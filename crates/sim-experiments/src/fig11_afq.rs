//! Figure 11 — AFQ vs CFQ across four priority workloads.
//!
//! (a) sequential reads — both respect priorities;
//! (b) async sequential writes — CFQ flattens (write delegation), AFQ
//!     follows the goal;
//! (c) sync random writes (4 KB write + fsync) — CFQ inverts under the
//!     journal, AFQ gates low-priority fsyncs;
//! (d) in-memory overwrites — no disk contention; both run at memory
//!     speed (AFQ pays a little bookkeeping).

use sim_block::IoPrio;
use sim_core::{Pid, SimDuration};
use sim_workloads::{BatchRandFsyncer, MemOverwriter, SeqReader, SeqWriter};

use crate::fig03_cfq_async_unfair::{goal_shares, mean_deviation};
use crate::setup::{build_world, SchedChoice, Setup};
use crate::table::{f1, Table};
use crate::{GB, KB, MB};

/// Which of the four panels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// (a) sequential reads.
    SeqRead,
    /// (b) async sequential writes.
    AsyncWrite,
    /// (c) sync random writes (write 4 KB + fsync).
    SyncRandWrite,
    /// (d) overwrites confined to the cache.
    MemOverwrite,
}

impl Workload {
    /// Panel label.
    pub fn label(self) -> &'static str {
        match self {
            Workload::SeqRead => "(a) seq read",
            Workload::AsyncWrite => "(b) async write",
            Workload::SyncRandWrite => "(c) sync rand write",
            Workload::MemOverwrite => "(d) mem overwrite",
        }
    }
}

/// Configuration.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Simulated run time per panel.
    pub duration: SimDuration,
    /// Threads per priority level in panel (c) (the paper uses 5).
    pub sync_threads_per_prio: usize,
    /// Experiment seed (0 = historical run).
    pub seed: u64,
}

impl Config {
    /// Small run for tests.
    pub fn quick() -> Self {
        Config {
            duration: SimDuration::from_secs(15),
            sync_threads_per_prio: 2,
            seed: 0,
        }
    }

    /// Paper-scale run.
    pub fn paper() -> Self {
        Config {
            duration: SimDuration::from_secs(60),
            sync_threads_per_prio: 5,
            seed: 0,
        }
    }
}

/// One scheduler's result on one panel.
#[derive(Debug, Clone)]
pub struct PanelResult {
    /// Scheduler.
    pub sched: &'static str,
    /// Panel.
    pub workload: Workload,
    /// Share of throughput per priority level (%).
    pub share_pct: [f64; 8],
    /// Mean relative deviation from the goal distribution.
    pub deviation: f64,
    /// Total throughput (MB/s).
    pub total_mbps: f64,
}

/// Full figure: every panel × {CFQ, AFQ}.
#[derive(Debug, Clone)]
pub struct FigResult {
    /// All panels.
    pub panels: Vec<PanelResult>,
}

/// Run one panel with one scheduler.
pub fn run_panel(cfg: &Config, sched: SchedChoice, wl: Workload) -> PanelResult {
    let (mut w, k) = build_world(Setup::new(sched).seed(cfg.seed));
    // pids[level] holds that priority level's thread(s).
    let mut pids: Vec<Vec<Pid>> = vec![Vec::new(); 8];
    for level in 0..8u8 {
        let nthreads = if wl == Workload::SyncRandWrite {
            cfg.sync_threads_per_prio
        } else {
            1
        };
        for t in 0..nthreads {
            let pid = match wl {
                Workload::SeqRead => {
                    let file = w.prealloc_file(k, 2 * GB, true);
                    w.spawn(k, Box::new(SeqReader::new(file, 2 * GB, MB)))
                }
                Workload::AsyncWrite => {
                    let file = w.prealloc_file(k, 2 * GB, true);
                    w.spawn(k, Box::new(SeqWriter::new(file, 2 * GB, MB)))
                }
                Workload::SyncRandWrite => {
                    let file = w.prealloc_file(k, 256 * MB, true);
                    w.spawn(
                        k,
                        Box::new(BatchRandFsyncer::new(
                            file,
                            256 * MB,
                            1,
                            SimDuration::ZERO,
                            cfg.seed ^ ((level as u64) << 8 | t as u64),
                        )),
                    )
                }
                Workload::MemOverwrite => {
                    let file = w.prealloc_file(k, 8 * MB, true);
                    w.spawn(k, Box::new(MemOverwriter::new(file, 4 * MB, 256 * KB)))
                }
            };
            w.set_ioprio(k, pid, IoPrio::best_effort(level));
            pids[level as usize].push(pid);
        }
    }
    w.run_for(cfg.duration);
    let stats = &w.kernel(k).stats;
    let mut bytes = [0u64; 8];
    for (level, level_pids) in pids.iter().enumerate() {
        for pid in level_pids {
            if let Some(s) = stats.proc(*pid) {
                bytes[level] += match wl {
                    Workload::SeqRead => s.read_bytes,
                    _ => s.write_bytes,
                };
            }
        }
    }
    let total: u64 = bytes.iter().sum::<u64>().max(1);
    let mut share_pct = [0.0; 8];
    for (i, b) in bytes.iter().enumerate() {
        share_pct[i] = *b as f64 / total as f64 * 100.0;
    }
    PanelResult {
        sched: sched.name(),
        workload: wl,
        share_pct,
        deviation: mean_deviation(&share_pct, &goal_shares()),
        total_mbps: total as f64 / 1e6 / cfg.duration.as_secs_f64(),
    }
}

/// Run all four panels for CFQ and AFQ.
pub fn run(cfg: &Config) -> FigResult {
    let mut panels = Vec::new();
    for wl in [
        Workload::SeqRead,
        Workload::AsyncWrite,
        Workload::SyncRandWrite,
        Workload::MemOverwrite,
    ] {
        for sched in [SchedChoice::Cfq, SchedChoice::Afq] {
            panels.push(run_panel(cfg, sched, wl));
        }
    }
    FigResult { panels }
}

impl std::fmt::Display for FigResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Figure 11 — AFQ vs CFQ priority shares (goal ∝ weight)")?;
        let goal = goal_shares();
        let mut t = Table::new([
            "panel",
            "sched",
            "p0 %",
            "p2 %",
            "p4 %",
            "p7 %",
            "dev %",
            "total MB/s",
        ]);
        t.row([
            "goal".to_string(),
            "-".to_string(),
            f1(goal[0]),
            f1(goal[2]),
            f1(goal[4]),
            f1(goal[7]),
            "0".to_string(),
            "-".to_string(),
        ]);
        for p in &self.panels {
            t.row([
                p.workload.label().to_string(),
                p.sched.to_string(),
                f1(p.share_pct[0]),
                f1(p.share_pct[2]),
                f1(p.share_pct[4]),
                f1(p.share_pct[7]),
                format!("{:.0}", p.deviation * 100.0),
                f1(p.total_mbps),
            ]);
        }
        write!(f, "{}", t.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panel_a_both_respect_read_priorities() {
        let cfg = Config::quick();
        for sched in [SchedChoice::Cfq, SchedChoice::Afq] {
            let p = run_panel(&cfg, sched, Workload::SeqRead);
            assert!(
                p.share_pct[0] > 2.0 * p.share_pct[7],
                "{}: prio 0 should dominate prio 7: {:?}",
                p.sched,
                p.share_pct
            );
        }
    }

    #[test]
    fn panel_b_afq_respects_async_write_priorities_cfq_does_not() {
        let cfg = Config::quick();
        let cfq = run_panel(&cfg, SchedChoice::Cfq, Workload::AsyncWrite);
        let afq = run_panel(&cfg, SchedChoice::Afq, Workload::AsyncWrite);
        assert!(
            afq.deviation < 0.5 * cfq.deviation,
            "AFQ dev {:.2} must beat CFQ dev {:.2}",
            afq.deviation,
            cfq.deviation
        );
        assert!(
            afq.share_pct[0] > 1.5 * afq.share_pct[7],
            "AFQ must favour high priority: {:?}",
            afq.share_pct
        );
    }

    #[test]
    fn panel_c_afq_respects_sync_write_priorities() {
        let cfg = Config::quick();
        let cfq = run_panel(&cfg, SchedChoice::Cfq, Workload::SyncRandWrite);
        let afq = run_panel(&cfg, SchedChoice::Afq, Workload::SyncRandWrite);
        assert!(
            afq.deviation < cfq.deviation,
            "AFQ dev {:.2} must beat CFQ dev {:.2}",
            afq.deviation,
            cfq.deviation
        );
        assert!(
            afq.share_pct[0] > 1.5 * afq.share_pct[7],
            "AFQ must favour high priority under fsync: {:?}",
            afq.share_pct
        );
    }

    #[test]
    fn panel_d_memory_overwrites_fast_on_both() {
        let cfg = Config::quick();
        let cfq = run_panel(&cfg, SchedChoice::Cfq, Workload::MemOverwrite);
        let afq = run_panel(&cfg, SchedChoice::Afq, Workload::MemOverwrite);
        assert!(cfq.total_mbps > 500.0, "cfq mem total: {}", cfq.total_mbps);
        assert!(afq.total_mbps > 500.0, "afq mem total: {}", afq.total_mbps);
        // AFQ may be slightly slower (per-write bookkeeping) but not by
        // more than ~30%.
        assert!(afq.total_mbps > 0.7 * cfq.total_mbps);
    }
}
