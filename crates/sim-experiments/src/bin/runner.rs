//! Experiment runner: regenerates the paper's tables and figures.
//!
//! ```text
//! runner [--paper] [--csv] [--trace] [--faults] [fig01|fig03|fig05|
//!         fig06|fig09|fig10|fig11|fig12|fig13|fig14|fig15|fig16|fig17|
//!         fig18|fig19|fig20|fig21|ablations|breakdown|faults|all]
//! ```
//!
//! `--paper` uses the longer paper-scale configurations; the default
//! quick profiles finish in seconds each (release build recommended).
//! `--csv` additionally writes raw per-figure series under `results/`.
//! `--trace` runs fig12 with span tracing on and writes Chrome
//! trace-event JSON (open in Perfetto / `chrome://tracing`) under
//! `results/`. `breakdown` prints the per-layer fsync latency
//! decomposition table. `--faults` (or the `faults` target) runs the
//! fault-injection sweep: power-cut replay across every journal
//! protocol step plus a device-write-failure sweep through the full
//! stack. It is *not* part of `all` — the figures stay a fault-free,
//! bit-reproducible baseline.

use sim_experiments as exp;

/// Write a raw artifact (CSV series, Chrome trace) under `results/`.
fn write_result(name: &str, content: &str) {
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_ok() {
        let path = dir.join(name);
        if std::fs::write(&path, content).is_ok() {
            eprintln!("wrote {}", path.display());
        }
    }
}

/// Write per-figure raw series as CSV files under `results/`.
fn write_csv(name: &str, content: &str) {
    write_result(&format!("{name}.csv"), content);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let paper = args.iter().any(|a| a == "--paper");
    let csv = args.iter().any(|a| a == "--csv");
    let trace = args.iter().any(|a| a == "--trace");
    let which: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|s| s.as_str())
        .collect();
    // The fault sweep is opt-in only: `all` keeps producing the fault-free
    // baseline figures, bit-identical run to run.
    let faults = args.iter().any(|a| a == "--faults") || which.contains(&"faults");
    let which: Vec<&str> = which.into_iter().filter(|n| *n != "faults").collect();
    let all = (which.is_empty() && !faults) || which.contains(&"all");
    let want = |name: &str| all || which.contains(&name);

    if faults {
        let cfg = if paper {
            exp::fault_sweep::Config::paper()
        } else {
            exp::fault_sweep::Config::quick()
        };
        let r = exp::fault_sweep::run(&cfg);
        println!("{r}\n");
        if csv {
            let mut out = String::from("nth_write,io_errors,journal_aborts,fsyncs_ok,fsyncs_eio\n");
            for p in &r.fault_points {
                out.push_str(&format!(
                    "{},{},{},{},{}\n",
                    p.nth_write, p.io_errors, p.journal_aborts, p.fsyncs_ok, p.fsyncs_failed
                ));
            }
            write_csv("fault_sweep", &out);
        }
        if r.total_violations() > 0 {
            eprintln!("FAIL: {} consistency violation(s)", r.total_violations());
            std::process::exit(1);
        }
    }

    if want("fig01") {
        let cfg = if paper {
            exp::fig01_write_burst::Config::paper()
        } else {
            exp::fig01_write_burst::Config::quick()
        };
        let r = exp::fig01_write_burst::run(&cfg);
        println!("{r}\n");
        if csv {
            let mut out = String::from("second,cfq_mbps,split_mbps\n");
            let n = r.cfq_idle.a_mbps.len().max(r.split_token.a_mbps.len());
            for i in 0..n {
                out.push_str(&format!(
                    "{},{:.2},{:.2}\n",
                    i,
                    r.cfq_idle.a_mbps.get(i).copied().unwrap_or(0.0),
                    r.split_token.a_mbps.get(i).copied().unwrap_or(0.0)
                ));
            }
            write_csv("fig01_write_burst", &out);
        }
    }
    if want("fig03") {
        let cfg = if paper {
            exp::fig03_cfq_async_unfair::Config::paper()
        } else {
            exp::fig03_cfq_async_unfair::Config::quick()
        };
        println!("{}\n", exp::fig03_cfq_async_unfair::run(&cfg));
    }
    if want("fig05") {
        let cfg = if paper {
            exp::fig05_latency_dependency::Config::paper()
        } else {
            exp::fig05_latency_dependency::Config::quick()
        };
        println!("{}\n", exp::fig05_latency_dependency::run(&cfg));
    }
    if want("fig06") {
        let cfg = if paper {
            exp::fig06_scs_isolation::Config::paper()
        } else {
            exp::fig06_scs_isolation::Config::quick()
        };
        println!("{}\n", exp::fig06_scs_isolation::run(&cfg));
    }
    if want("fig09") {
        let cfg = if paper {
            exp::fig09_time_overhead::Config::paper()
        } else {
            exp::fig09_time_overhead::Config::quick()
        };
        println!("{}\n", exp::fig09_time_overhead::run(&cfg));
    }
    if want("fig10") {
        let cfg = if paper {
            exp::fig10_space_overhead::Config::paper()
        } else {
            exp::fig10_space_overhead::Config::quick()
        };
        println!("{}\n", exp::fig10_space_overhead::run(&cfg));
    }
    if want("fig11") {
        let cfg = if paper {
            exp::fig11_afq::Config::paper()
        } else {
            exp::fig11_afq::Config::quick()
        };
        println!("{}\n", exp::fig11_afq::run(&cfg));
    }
    if want("fig12") {
        let cfg = if paper {
            exp::fig12_fsync_isolation::Config::paper_hdd()
        } else {
            exp::fig12_fsync_isolation::Config::quick_hdd()
        };
        let r = if trace {
            let (r, [block_json, split_json]) = exp::fig12_fsync_isolation::run_traced(&cfg);
            write_result("fig12_block_trace.json", &block_json);
            write_result("fig12_split_trace.json", &split_json);
            r
        } else {
            exp::fig12_fsync_isolation::run(&cfg)
        };
        println!("{r}\n");
        if csv {
            for (label, s) in [("block", &r.block), ("split", &r.split)] {
                let mut out = String::from("t_s,latency_ms\n");
                for (t, l) in &s.a_latencies {
                    out.push_str(&format!("{t:.3},{l:.3}\n"));
                }
                write_csv(&format!("fig12_hdd_{label}_timeline"), &out);
            }
        }
        let ssd = exp::fig12_fsync_isolation::Config::quick_ssd();
        println!("{}\n", exp::fig12_fsync_isolation::run(&ssd));
    }
    if want("fig13") {
        let cfg = if paper {
            exp::fig06_scs_isolation::Config::paper()
        } else {
            exp::fig06_scs_isolation::Config::quick()
        };
        println!("{}\n", exp::fig06_scs_isolation::run_fig13(&cfg));
    }
    if want("fig14") {
        let cfg = if paper {
            exp::fig14_token_comparison::Config::paper()
        } else {
            exp::fig14_token_comparison::Config::quick()
        };
        println!("{}\n", exp::fig14_token_comparison::run(&cfg));
    }
    if want("fig15") {
        let cfg = if paper {
            exp::fig15_thread_scaling::Config::paper()
        } else {
            exp::fig15_thread_scaling::Config::quick()
        };
        println!("{}\n", exp::fig15_thread_scaling::run(&cfg));
    }
    if want("fig16") {
        let cfg = if paper {
            exp::fig06_scs_isolation::Config::paper()
        } else {
            exp::fig06_scs_isolation::Config::quick()
        };
        println!("{}\n", exp::fig06_scs_isolation::run_fig16(&cfg));
    }
    if want("fig17") {
        let cfg = if paper {
            exp::fig17_metadata::Config::paper()
        } else {
            exp::fig17_metadata::Config::quick()
        };
        println!("{}\n", exp::fig17_metadata::run(&cfg));
    }
    if want("fig18") {
        let cfg = if paper {
            exp::fig18_sqlite::Config::paper()
        } else {
            exp::fig18_sqlite::Config::quick()
        };
        println!("{}\n", exp::fig18_sqlite::run(&cfg));
    }
    if want("fig19") {
        let cfg = if paper {
            exp::fig19_postgres::Config::paper()
        } else {
            exp::fig19_postgres::Config::quick()
        };
        println!("{}\n", exp::fig19_postgres::run(&cfg));
    }
    if want("fig20") {
        let cfg = if paper {
            exp::fig20_qemu::Config::paper()
        } else {
            exp::fig20_qemu::Config::quick()
        };
        println!("{}\n", exp::fig20_qemu::run(&cfg));
    }
    if want("ablations") {
        println!(
            "{}",
            exp::ablations::burst_ablation(sim_core::SimDuration::from_secs(20))
        );
        println!(
            "{}",
            exp::ablations::tag_ablation(sim_core::SimDuration::from_secs(20))
        );
        println!(
            "{}",
            exp::ablations::gate_ablation(sim_core::SimDuration::from_secs(15))
        );
    }
    if want("breakdown") {
        let cfg = if paper {
            exp::breakdown::Config::paper()
        } else {
            exp::breakdown::Config::quick()
        };
        println!("{}\n", exp::breakdown::run(&cfg));
    }
    if want("fig21") {
        let cfg = if paper {
            exp::fig21_hdfs::Config::paper()
        } else {
            exp::fig21_hdfs::Config::quick()
        };
        println!("{}\n", exp::fig21_hdfs::run(&cfg));
    }
}
