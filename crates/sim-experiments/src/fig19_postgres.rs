//! Figure 19 — PostgreSQL transaction-latency CDF (the "fsync freeze").
//!
//! A pgbench-like mix on an SSD with periodic checkpoints. Three systems:
//! Block-Deadline (the freeze: latency spikes at every checkpoint),
//! Split-Pdflush (Split-Deadline but pdflush still submits writeback on
//! its own — better, held back by untimely flusher bursts), and full
//! Split-Deadline (scheduler-owned writeback — the tail disappears).

use sim_apps::pgsim::{PgCheckpointer, PgConfig, PgShared, PgWorker};
use sim_core::{SimDuration, SimTime};
use split_core::SchedAttr;

use crate::setup::{build_world, SchedChoice, Setup};
use crate::table::{f1, ms, Table};
use crate::MB;

/// Configuration.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Simulated run time.
    pub duration: SimDuration,
    /// Worker thread count.
    pub workers: usize,
    /// Database workload parameters.
    pub pg: PgConfig,
    /// The latency target the paper uses (15 ms).
    pub target_ms: f64,
    /// Experiment seed (0 = historical run).
    pub seed: u64,
}

impl Config {
    /// Small run for tests.
    pub fn quick() -> Self {
        Config {
            duration: SimDuration::from_secs(25),
            workers: 4,
            pg: PgConfig {
                checkpoint_interval: SimDuration::from_secs(8),
                ..Default::default()
            },
            target_ms: 15.0,
            seed: 0,
        }
    }

    /// Paper-scale run.
    pub fn paper() -> Self {
        Config {
            duration: SimDuration::from_secs(90),
            pg: PgConfig {
                checkpoint_interval: SimDuration::from_secs(30),
                ..Default::default()
            },
            ..Self::quick()
        }
    }
}

/// One system's latency distribution.
#[derive(Debug, Clone)]
pub struct Series {
    /// Scheduler name.
    pub sched: &'static str,
    /// Median latency (ms).
    pub p50_ms: f64,
    /// 99th percentile (ms).
    pub p99_ms: f64,
    /// 99.9th percentile (ms).
    pub p999_ms: f64,
    /// Worst transaction (ms) — where the fsync freeze lives.
    pub max_ms: f64,
    /// Fraction of transactions missing the 15 ms target (%).
    pub miss_pct: f64,
    /// Fraction exceeding 100 ms (%).
    pub over_100ms_pct: f64,
    /// Transactions completed.
    pub txns: usize,
}

/// Full figure.
#[derive(Debug, Clone)]
pub struct FigResult {
    /// Block-Deadline.
    pub block: Series,
    /// Split-Pdflush.
    pub split_pdflush: Series,
    /// Split-Deadline.
    pub split: Series,
    /// Config used.
    pub cfg: Config,
}

fn run_one(cfg: &Config, sched: SchedChoice) -> Series {
    let (mut w, k) = build_world(Setup::new(sched).on_ssd().seed(cfg.seed));
    let pg = PgConfig {
        seed: cfg.seed,
        ..cfg.pg
    };
    let table_file = w.prealloc_file(k, pg.table_bytes, true);
    let wal_file = w.prealloc_file(k, 128 * MB, true);
    let shared = PgShared::new();
    let mut workers = Vec::new();
    for i in 0..cfg.workers {
        let pid = w.spawn(
            k,
            Box::new(PgWorker::new(
                pg,
                shared.clone(),
                table_file,
                wal_file,
                cfg.seed ^ (0x9b + i as u64),
            )),
        );
        workers.push(pid);
    }
    let cp = w.spawn(
        k,
        Box::new(PgCheckpointer::new(pg, shared.clone(), table_file)),
    );
    match sched {
        SchedChoice::SplitDeadline | SchedChoice::SplitPdflush => {
            // §7.1.2's settings: 5 ms foreground fsync deadline, 200 ms
            // background checkpoint deadline, 5 ms block reads.
            for pid in &workers {
                w.configure(
                    k,
                    *pid,
                    SchedAttr::FsyncDeadline(SimDuration::from_millis(5)),
                );
            }
            w.configure(
                k,
                cp,
                SchedAttr::FsyncDeadline(SimDuration::from_millis(200)),
            );
        }
        _ => {
            for pid in workers.iter().chain(std::iter::once(&cp)) {
                w.configure(
                    k,
                    *pid,
                    SchedAttr::WriteDeadline(SimDuration::from_millis(5)),
                );
            }
        }
    }
    // Block reads carry a 5 ms deadline in all systems.
    for pid in &workers {
        w.configure(
            k,
            *pid,
            SchedAttr::ReadDeadline(SimDuration::from_millis(5)),
        );
    }
    w.run_for(cfg.duration);
    let sh = shared.borrow();
    let warmup = SimTime::ZERO + SimDuration::from_secs(2);
    let lat_ms: Vec<f64> = sh
        .txn_latencies
        .iter()
        .filter(|(t, _)| *t > warmup)
        .map(|(_, d)| d.as_millis_f64())
        .collect();
    let n = lat_ms.len().max(1) as f64;
    let pcts = sim_core::stats::Percentiles::from_slice(&lat_ms);
    Series {
        sched: sched.name(),
        p50_ms: pcts.p50(),
        p99_ms: pcts.p99(),
        p999_ms: pcts.p(99.9),
        max_ms: lat_ms.iter().cloned().fold(0.0, f64::max),
        miss_pct: lat_ms.iter().filter(|&&l| l > cfg.target_ms).count() as f64 / n * 100.0,
        over_100ms_pct: lat_ms.iter().filter(|&&l| l > 100.0).count() as f64 / n * 100.0,
        txns: lat_ms.len(),
    }
}

/// Run all three systems.
pub fn run(cfg: &Config) -> FigResult {
    FigResult {
        block: run_one(cfg, SchedChoice::BlockDeadline),
        split_pdflush: run_one(cfg, SchedChoice::SplitPdflush),
        split: run_one(cfg, SchedChoice::SplitDeadline),
        cfg: *cfg,
    }
}

impl std::fmt::Display for FigResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Figure 19 — PostgreSQL latencies (SSD, checkpoints every {:.0} s)",
            self.cfg.pg.checkpoint_interval.as_secs_f64()
        )?;
        let mut t = Table::new([
            "system", "p50", "p99", "p99.9", "max", ">15ms %", ">100ms %", "txns",
        ]);
        for s in [&self.block, &self.split_pdflush, &self.split] {
            t.row([
                s.sched.to_string(),
                ms(s.p50_ms),
                ms(s.p99_ms),
                ms(s.p999_ms),
                ms(s.max_ms),
                f1(s.miss_pct),
                f1(s.over_100ms_pct),
                s.txns.to_string(),
            ]);
        }
        write!(f, "{}", t.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_deadline_fixes_the_fsync_freeze() {
        let r = run(&Config::quick());
        assert!(r.block.txns > 500, "block txns {}", r.block.txns);
        assert!(r.split.txns > 500, "split txns {}", r.split.txns);
        // The freeze: under Block-Deadline some transactions stall for
        // whole seconds while the checkpoint flushes (the paper's >500 ms
        // CDF tail); Split-Deadline removes it outright.
        assert!(
            r.block.max_ms > 500.0,
            "block must exhibit the freeze: max {} ms",
            r.block.max_ms
        );
        assert!(
            r.split.max_ms < 0.2 * r.block.max_ms,
            "split must remove the freeze: {} vs {} ms",
            r.split.max_ms,
            r.block.max_ms
        );
        // Split-Pdflush sits in between: pdflush's own bursts keep some
        // tail that full (scheduler-owned writeback) Split-Deadline
        // eliminates.
        assert!(
            r.split_pdflush.max_ms <= r.block.max_ms,
            "pdflush variant beats block: {} vs {}",
            r.split_pdflush.max_ms,
            r.block.max_ms
        );
        assert!(
            r.split.max_ms <= 1.05 * r.split_pdflush.max_ms,
            "owned writeback is at least as good as pdflush: {} vs {}",
            r.split.max_ms,
            r.split_pdflush.max_ms
        );
    }
}
