//! Figure 17 — metadata workloads: full (ext4) vs partial (XFS)
//! integration.
//!
//! A reads sequentially; B repeatedly creates empty files and fsyncs
//! them, throttled under Split-Token, sleeping a varied time between
//! creates. With ext4's full integration the journal I/O carries B's
//! cause tag, so B's creates are correctly charged and throttled and A is
//! isolated. With XFS's partial integration the log task is untagged: B
//! escapes the throttle at low sleep times, and A pays for it.

use sim_core::SimDuration;
use sim_kernel::FsChoice;
use sim_workloads::{CreatFsyncLoop, SeqReader};
use split_core::SchedAttr;

use crate::setup::{build_world, SchedChoice, Setup};
use crate::table::{f1, Table};
use crate::{GB, MB};

/// Configuration.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Simulated time per point.
    pub duration: SimDuration,
    /// B's sleep between creates, sweep (ms).
    pub sleeps_ms: [u64; 4],
    /// B's token rate (normalized bytes/second).
    pub b_rate: u64,
    /// Experiment seed (0 = historical run).
    pub seed: u64,
}

impl Config {
    /// Small run for tests.
    pub fn quick() -> Self {
        Config {
            duration: SimDuration::from_secs(10),
            sleeps_ms: [0, 10, 50, 200],
            b_rate: MB / 2,
            seed: 0,
        }
    }

    /// Paper-scale run.
    pub fn paper() -> Self {
        Config {
            duration: SimDuration::from_secs(30),
            ..Self::quick()
        }
    }
}

/// One (fs, sleep) point.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    /// B's sleep between creates (ms).
    pub sleep_ms: u64,
    /// A's throughput (MB/s).
    pub a_mbps: f64,
    /// B's creates per second.
    pub b_creates_per_sec: f64,
}

/// Per-filesystem series.
#[derive(Debug, Clone)]
pub struct FigResult {
    /// ext4 (full integration) sweep.
    pub ext4: Vec<Point>,
    /// XFS (partial integration) sweep.
    pub xfs: Vec<Point>,
}

/// Run one point.
pub fn run_point(cfg: &Config, fs: FsChoice, sleep_ms: u64) -> Point {
    let setup = match fs {
        FsChoice::Ext4 => Setup::new(SchedChoice::SplitToken),
        FsChoice::Xfs => Setup::new(SchedChoice::SplitToken).on_xfs(),
    };
    let (mut w, k) = build_world(setup.seed(cfg.seed));
    let a_file = w.prealloc_file(k, 4 * GB, true);
    let a = w.spawn(k, Box::new(SeqReader::new(a_file, 4 * GB, MB)));
    let b = w.spawn(
        k,
        Box::new(CreatFsyncLoop::new(SimDuration::from_millis(sleep_ms))),
    );
    w.configure(k, b, SchedAttr::TokenRate(cfg.b_rate));
    w.run_for(cfg.duration);
    let stats = &w.kernel(k).stats;
    let creates = stats.proc(b).map(|s| s.meta_ops.len()).unwrap_or(0);
    Point {
        sleep_ms,
        a_mbps: stats.read_mbps(a, cfg.duration),
        b_creates_per_sec: creates as f64 / cfg.duration.as_secs_f64(),
    }
}

/// Run the full sweep on both file systems.
pub fn run(cfg: &Config) -> FigResult {
    let sweep = |fs| {
        cfg.sleeps_ms
            .iter()
            .map(|&s| run_point(cfg, fs, s))
            .collect::<Vec<_>>()
    };
    FigResult {
        ext4: sweep(FsChoice::Ext4),
        xfs: sweep(FsChoice::Xfs),
    }
}

impl std::fmt::Display for FigResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Figure 17 — metadata workload under Split-Token: ext4 (full) vs XFS (partial)"
        )?;
        let mut t = Table::new([
            "B sleep ms",
            "ext4 A MB/s",
            "ext4 B creat/s",
            "xfs A MB/s",
            "xfs B creat/s",
        ]);
        for (e, x) in self.ext4.iter().zip(&self.xfs) {
            t.row([
                e.sleep_ms.to_string(),
                f1(e.a_mbps),
                f1(e.b_creates_per_sec),
                f1(x.a_mbps),
                f1(x.b_creates_per_sec),
            ]);
        }
        write!(f, "{}", t.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ext4_throttles_creates_but_xfs_does_not() {
        let cfg = Config::quick();
        let e = run_point(&cfg, FsChoice::Ext4, 0);
        let x = run_point(&cfg, FsChoice::Xfs, 0);
        // XFS's untagged log lets B create far faster than ext4's
        // correctly-charged creates.
        assert!(
            x.b_creates_per_sec > 2.0 * e.b_creates_per_sec.max(0.5),
            "xfs {} vs ext4 {} creates/s",
            x.b_creates_per_sec,
            e.b_creates_per_sec
        );
    }

    #[test]
    fn a_is_isolated_on_ext4_regardless_of_b_sleep() {
        let cfg = Config::quick();
        let busy = run_point(&cfg, FsChoice::Ext4, 0);
        let idle = run_point(&cfg, FsChoice::Ext4, 200);
        assert!(
            (busy.a_mbps - idle.a_mbps).abs() / idle.a_mbps < 0.25,
            "ext4 must isolate A from B's metadata storm: {} vs {}",
            busy.a_mbps,
            idle.a_mbps
        );
    }

    #[test]
    fn a_suffers_on_xfs_when_b_is_busy() {
        let cfg = Config::quick();
        let busy = run_point(&cfg, FsChoice::Xfs, 0);
        let idle = run_point(&cfg, FsChoice::Xfs, 200);
        assert!(
            busy.a_mbps < 0.85 * idle.a_mbps,
            "xfs partial integration lets B hurt A: busy {} vs idle {}",
            busy.a_mbps,
            idle.a_mbps
        );
    }
}
