//! Figure 18 — SQLite transaction tail latencies.
//!
//! Random row updates through a WAL with a checkpointer triggered by a
//! dirty-buffer threshold. Under Block-Deadline, raising the threshold
//! makes checkpoints rarer but *worse* — the p99 falls while the p99.9
//! keeps rising (the cost concentrates on fewer victims). Split-Deadline
//! (100 ms deadline on WAL fsyncs, 10 s on database fsyncs) removes the
//! tail (the paper reports 4× at 1 K buffers).

use sim_apps::minidb::{Checkpointer, MiniDbConfig, MiniDbShared, TxnWorker};
use sim_core::{SimDuration, SimTime};
use split_core::SchedAttr;

use crate::setup::{build_world, SchedChoice, Setup};
use crate::table::{ms, Table};
use crate::MB;

/// Configuration.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Simulated run time per point.
    pub duration: SimDuration,
    /// Checkpoint thresholds to sweep (dirty buffers).
    pub thresholds: [u64; 3],
    /// Database size.
    pub db_bytes: u64,
    /// Experiment seed (0 = historical run).
    pub seed: u64,
}

impl Config {
    /// Small run for tests.
    pub fn quick() -> Self {
        Config {
            duration: SimDuration::from_secs(25),
            thresholds: [200, 800, 2000],
            db_bytes: 256 * MB,
            seed: 0,
        }
    }

    /// Paper-scale run.
    pub fn paper() -> Self {
        Config {
            duration: SimDuration::from_secs(60),
            ..Self::quick()
        }
    }
}

/// One (scheduler, threshold) outcome.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    /// Checkpoint threshold (buffers).
    pub threshold: u64,
    /// Transaction p99 latency (ms).
    pub p99_ms: f64,
    /// Transaction p99.9 latency (ms).
    pub p999_ms: f64,
    /// Median latency (ms).
    pub p50_ms: f64,
    /// Transactions completed.
    pub txns: usize,
    /// Checkpoints completed.
    pub checkpoints: u64,
}

/// Full figure.
#[derive(Debug, Clone)]
pub struct FigResult {
    /// Block-Deadline sweep (panel a).
    pub block: Vec<Point>,
    /// Split-Deadline sweep (panel b).
    pub split: Vec<Point>,
}

/// Run one point.
pub fn run_point(cfg: &Config, sched: SchedChoice, threshold: u64) -> Point {
    let (mut w, k) = build_world(Setup::new(sched).seed(cfg.seed));
    let db_file = w.prealloc_file(k, cfg.db_bytes, true);
    let wal_file = w.prealloc_file(k, 64 * MB, true);
    let shared = MiniDbShared::new();
    let db_cfg = MiniDbConfig {
        db_bytes: cfg.db_bytes,
        checkpoint_threshold: threshold,
        seed: cfg.seed,
        ..Default::default()
    };
    let worker = w.spawn(
        k,
        Box::new(TxnWorker::new(
            db_cfg,
            shared.clone(),
            db_file,
            wal_file,
            cfg.seed ^ 0x51,
        )),
    );
    let cp = w.spawn(
        k,
        Box::new(Checkpointer::new(db_cfg, shared.clone(), db_file)),
    );
    if sched == SchedChoice::SplitDeadline {
        // Short deadline for WAL fsyncs (the worker), long for database
        // fsyncs (the checkpointer) — §7.1.1's settings.
        w.configure(
            k,
            worker,
            SchedAttr::FsyncDeadline(SimDuration::from_millis(100)),
        );
        w.configure(k, cp, SchedAttr::FsyncDeadline(SimDuration::from_secs(10)));
    } else {
        for pid in [worker, cp] {
            w.configure(
                k,
                pid,
                SchedAttr::WriteDeadline(SimDuration::from_millis(500)),
            );
        }
    }
    w.run_for(cfg.duration);
    let sh = shared.borrow();
    let warmup = SimTime::ZERO + SimDuration::from_secs(2);
    let lat_ms: Vec<f64> = sh
        .txn_latencies
        .iter()
        .filter(|(t, _)| *t > warmup)
        .map(|(_, d)| d.as_millis_f64())
        .collect();
    let pcts = sim_core::stats::Percentiles::from_slice(&lat_ms);
    Point {
        threshold,
        p99_ms: pcts.p99(),
        p999_ms: pcts.p(99.9),
        p50_ms: pcts.p50(),
        txns: lat_ms.len(),
        checkpoints: sh.checkpoints,
    }
}

/// Run both sweeps.
pub fn run(cfg: &Config) -> FigResult {
    let sweep = |sched| {
        cfg.thresholds
            .iter()
            .map(|&t| run_point(cfg, sched, t))
            .collect::<Vec<_>>()
    };
    FigResult {
        block: sweep(SchedChoice::BlockDeadline),
        split: sweep(SchedChoice::SplitDeadline),
    }
}

impl std::fmt::Display for FigResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Figure 18 — SQLite transaction tail latencies")?;
        let mut t = Table::new([
            "threshold",
            "block p99",
            "block p99.9",
            "split p99",
            "split p99.9",
        ]);
        for (b, s) in self.block.iter().zip(&self.split) {
            t.row([
                b.threshold.to_string(),
                ms(b.p99_ms),
                ms(b.p999_ms),
                ms(s.p99_ms),
                ms(s.p999_ms),
            ]);
        }
        write!(f, "{}", t.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_deadline_cuts_the_tail() {
        let cfg = Config::quick();
        let threshold = cfg.thresholds[1]; // ~1 K buffers, the paper's 4x point
        let block = run_point(&cfg, SchedChoice::BlockDeadline, threshold);
        let split = run_point(&cfg, SchedChoice::SplitDeadline, threshold);
        assert!(block.txns > 100, "block txns: {}", block.txns);
        assert!(split.txns > 100, "split txns: {}", split.txns);
        assert!(
            block.p999_ms > 2.0 * split.p999_ms,
            "split p99.9 {} must beat block p99.9 {}",
            split.p999_ms,
            block.p999_ms
        );
    }

    #[test]
    fn bigger_thresholds_concentrate_the_tail_under_block_deadline() {
        let cfg = Config::quick();
        let small = run_point(&cfg, SchedChoice::BlockDeadline, cfg.thresholds[0]);
        let large = run_point(&cfg, SchedChoice::BlockDeadline, cfg.thresholds[2]);
        // Rarer checkpoints, worse extremes.
        assert!(
            large.p999_ms > small.p999_ms,
            "p99.9 should rise with threshold: {} vs {}",
            large.p999_ms,
            small.p999_ms
        );
        assert!(large.checkpoints <= small.checkpoints);
    }
}
