//! Figure 21 — HDFS isolation.
//!
//! Seven workers, four throttled and four unthrottled writer threads,
//! 3× replication. Panel (a): smaller local rate caps on the throttled
//! account give the unthrottled account more throughput, but the
//! throttled account falls short of its theoretical bound
//! `(cap / replication) × workers` because randomly-placed 64 MB blocks
//! leave tokens unused on idle workers. Panel (b): 16 MB blocks
//! re-randomize placement more often, recovering most of the gap.

use sim_apps::dfs::{DfsCluster, DfsConfig};
use sim_core::SimDuration;
use sim_kernel::World;

use crate::table::{f1, Table};
use crate::MB;

/// Configuration.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Simulated time per point.
    pub duration: SimDuration,
    /// Rate caps to sweep (bytes/second per worker).
    pub rate_caps: [u64; 3],
    /// Writers per group.
    pub writers_per_group: usize,
    /// Cluster shape.
    pub cluster: DfsConfig,
    /// Experiment seed (0 = historical run).
    pub seed: u64,
}

impl Config {
    /// Small run for tests.
    pub fn quick() -> Self {
        Config {
            duration: SimDuration::from_secs(10),
            rate_caps: [4 * MB, 8 * MB, 16 * MB],
            writers_per_group: 2,
            cluster: DfsConfig {
                workers: 5,
                block_bytes: 32 * MB,
                ..Default::default()
            },
            seed: 0,
        }
    }

    /// Shape the cluster from a fleet configuration: node count and
    /// replication come from [`sim_cluster::ClusterConfig`], so the
    /// paper's fixed 7-node run is just one point on the fleet-size
    /// axis and a 1-kernel fleet degenerates to a single local worker.
    pub fn with_fleet(fleet: &sim_cluster::ClusterConfig) -> Self {
        let base = Config::quick();
        Config {
            cluster: DfsConfig {
                block_bytes: base.cluster.block_bytes,
                ..fleet.dfs()
            },
            ..base
        }
    }

    /// Paper-scale run (7 workers, 4+4 writers, 64 MB blocks).
    pub fn paper() -> Self {
        Config {
            duration: SimDuration::from_secs(30),
            rate_caps: [8 * MB, 16 * MB, 32 * MB],
            writers_per_group: 4,
            cluster: DfsConfig {
                workers: 7,
                block_bytes: 64 * MB,
                ..Default::default()
            },
            seed: 0,
        }
    }
}

/// One point of the sweep.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    /// Local rate cap on the throttled account (MB/s per worker).
    pub cap_mbps: f64,
    /// Throttled account client-visible throughput (MB/s).
    pub throttled_mbps: f64,
    /// Unthrottled account throughput (MB/s).
    pub unthrottled_mbps: f64,
    /// Theoretical bound for the throttled account (MB/s).
    pub bound_mbps: f64,
}

/// Full figure.
#[derive(Debug, Clone)]
pub struct FigResult {
    /// Sweep with the configured (large) block size.
    pub large_blocks: Vec<Point>,
    /// Sweep with blocks a quarter the size (panel b).
    pub small_blocks: Vec<Point>,
}

/// Run one point.
pub fn run_point(cfg: &Config, block_bytes: u64, cap: u64) -> Point {
    let mut w = World::new();
    let mut cluster = DfsCluster::new(
        &mut w,
        DfsConfig {
            block_bytes,
            seed: cfg.cluster.seed ^ cfg.seed,
            ..cfg.cluster
        },
    );
    const THROTTLED: u32 = 1;
    const UNTHROTTLED: u32 = 2;
    for _ in 0..cfg.writers_per_group {
        cluster
            .add_client(&mut w, THROTTLED)
            .expect("cluster has workers");
        cluster
            .add_client(&mut w, UNTHROTTLED)
            .expect("cluster has workers");
    }
    cluster
        .set_account_rate(&mut w, THROTTLED, cap)
        .expect("throttled account exists and cap is nonzero");
    cluster.run(&mut w, cfg.duration);
    let secs = cfg.duration.as_secs_f64();
    let repl = cfg.cluster.replication as f64;
    Point {
        cap_mbps: cap as f64 / 1e6,
        throttled_mbps: cluster.account_bytes(THROTTLED) as f64 / 1e6 / secs,
        unthrottled_mbps: cluster.account_bytes(UNTHROTTLED) as f64 / 1e6 / secs,
        bound_mbps: cap as f64 / 1e6 / repl * cfg.cluster.workers as f64,
    }
}

/// Run both block-size sweeps.
pub fn run(cfg: &Config) -> FigResult {
    let sweep = |block| {
        cfg.rate_caps
            .iter()
            .map(|&cap| run_point(cfg, block, cap))
            .collect::<Vec<_>>()
    };
    FigResult {
        large_blocks: sweep(cfg.cluster.block_bytes),
        small_blocks: sweep(cfg.cluster.block_bytes / 4),
    }
}

impl std::fmt::Display for FigResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Figure 21 — HDFS isolation (Split-Token on every worker)"
        )?;
        for (label, series) in [
            ("large blocks", &self.large_blocks),
            ("blocks/4", &self.small_blocks),
        ] {
            writeln!(f, "[{label}]")?;
            let mut t = Table::new([
                "cap MB/s",
                "throttled MB/s",
                "bound MB/s",
                "unthrottled MB/s",
            ]);
            for p in series {
                t.row([
                    f1(p.cap_mbps),
                    f1(p.throttled_mbps),
                    f1(p.bound_mbps),
                    f1(p.unthrottled_mbps),
                ]);
            }
            writeln!(f, "{}", t.render())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smaller_caps_give_unthrottled_writers_more() {
        let cfg = Config::quick();
        let small_cap = run_point(&cfg, cfg.cluster.block_bytes, cfg.rate_caps[0]);
        let big_cap = run_point(&cfg, cfg.cluster.block_bytes, cfg.rate_caps[2]);
        assert!(
            small_cap.unthrottled_mbps > big_cap.unthrottled_mbps,
            "tighter caps should free bandwidth: {} vs {}",
            small_cap.unthrottled_mbps,
            big_cap.unthrottled_mbps
        );
        assert!(
            small_cap.throttled_mbps < big_cap.throttled_mbps,
            "and throttle the throttled: {} vs {}",
            small_cap.throttled_mbps,
            big_cap.throttled_mbps
        );
    }

    #[test]
    fn throttled_account_stays_at_or_under_its_bound() {
        let cfg = Config::quick();
        let p = run_point(&cfg, cfg.cluster.block_bytes, cfg.rate_caps[1]);
        assert!(
            p.throttled_mbps <= 1.15 * p.bound_mbps,
            "throttled {} must respect the bound {}",
            p.throttled_mbps,
            p.bound_mbps
        );
        assert!(p.throttled_mbps > 0.0);
    }

    #[test]
    fn fleet_shapes_the_cluster_and_one_kernel_degenerates() {
        let fleet = sim_cluster::ClusterConfig {
            kernels: 1,
            ..Default::default()
        };
        let cfg = Config::with_fleet(&fleet);
        assert_eq!(cfg.cluster.workers, 1);
        assert_eq!(cfg.cluster.replication, 1, "1-shard fleet: no replicas");
        // The degenerate single-worker cluster must still run and
        // respect the cap — everything lands on one local kernel.
        let p = run_point(&cfg, cfg.cluster.block_bytes, cfg.rate_caps[1]);
        assert!(p.throttled_mbps > 0.0);
        assert!(
            p.throttled_mbps <= 1.15 * p.bound_mbps,
            "throttled {} vs bound {}",
            p.throttled_mbps,
            p.bound_mbps
        );

        let paper = sim_cluster::ClusterConfig {
            kernels: 7,
            ..Default::default()
        };
        let shaped = Config::with_fleet(&paper);
        assert_eq!(shaped.cluster.workers, 7, "the paper's node count");
        assert_eq!(shaped.cluster.replication, 3);
    }

    #[test]
    fn smaller_blocks_improve_load_balance() {
        let cfg = Config::quick();
        let cap = cfg.rate_caps[0];
        let large = run_point(&cfg, cfg.cluster.block_bytes, cap);
        let small = run_point(&cfg, cfg.cluster.block_bytes / 4, cap);
        // With more frequent placement decisions, the throttled group
        // gets closer to its bound (allow a little noise).
        assert!(
            small.throttled_mbps >= 0.9 * large.throttled_mbps,
            "smaller blocks should not hurt: {} vs {}",
            small.throttled_mbps,
            large.throttled_mbps
        );
    }
}
