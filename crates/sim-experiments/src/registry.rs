//! Figure registry: one uniform entry point over every experiment.
//!
//! The runner's per-figure match and the sweep engine both go through
//! [`run_cell`], so a figure runs identically whether it is printed
//! sequentially, executed on a worker thread, or replicated across
//! seeds. A cell returns the exact text the sequential runner would
//! have printed (so parallel `runner all` output can be byte-identical
//! to the sequential path), a flat list of named scalar metrics for
//! statistical aggregation, and any raw artifacts (CSV series, Chrome
//! traces) for the caller to write to disk.

use crate::setup::{DeviceChoice, SchedChoice};
use crate::{ablations, breakdown, fig06_scs_isolation, fig12_fsync_isolation, KB};
use sim_core::SimDuration;
use sim_kernel::FsChoice;

/// Every runnable target of the figure suite, in `runner all` order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FigureId {
    /// Figure 1 — write burst under CFQ-idle vs Split-Token.
    Fig01,
    /// Figure 1 queue-depth sweep — the write burst vs NCQ depth 1→32.
    Fig01Qd,
    /// Figure 3 — CFQ async-write unfairness.
    Fig03,
    /// Figure 5 — fsync latency dependencies.
    Fig05,
    /// Figure 6 — SCS-Token isolation failure.
    Fig06,
    /// Figure 9 — framework time overhead.
    Fig09,
    /// Figure 10 — tag-memory overhead.
    Fig10,
    /// Figure 11 — AFQ vs CFQ priorities.
    Fig11,
    /// Figure 12 — fsync isolation (HDD + SSD).
    Fig12,
    /// Figure 13 — Split-Token isolation on ext4.
    Fig13,
    /// Figure 14 — Split-Token vs SCS-Token workloads.
    Fig14,
    /// Figure 15 — thread-count scalability.
    Fig15,
    /// Figure 16 — Split-Token isolation on XFS.
    Fig16,
    /// Figure 17 — metadata workloads, full vs partial integration.
    Fig17,
    /// Figure 18 — SQLite transaction tails.
    Fig18,
    /// Figure 19 — PostgreSQL fsync freeze.
    Fig19,
    /// Figure 20 — QEMU guest isolation.
    Fig20,
    /// Mechanism ablations.
    Ablations,
    /// fsync latency breakdown.
    Breakdown,
    /// Figure 21 — HDFS isolation.
    Fig21,
    /// Cluster figure — fleet-wide SLOs under a flash crowd.
    FigCluster,
    /// Layer-plane figure — multi-tenant SLOs under the layer tree.
    FigLayers,
}

impl FigureId {
    /// All targets in the order `runner all` prints them.
    pub const ALL: [FigureId; 22] = [
        FigureId::Fig01,
        FigureId::Fig01Qd,
        FigureId::Fig03,
        FigureId::Fig05,
        FigureId::Fig06,
        FigureId::Fig09,
        FigureId::Fig10,
        FigureId::Fig11,
        FigureId::Fig12,
        FigureId::Fig13,
        FigureId::Fig14,
        FigureId::Fig15,
        FigureId::Fig16,
        FigureId::Fig17,
        FigureId::Fig18,
        FigureId::Fig19,
        FigureId::Fig20,
        FigureId::Ablations,
        FigureId::Breakdown,
        FigureId::Fig21,
        FigureId::FigCluster,
        FigureId::FigLayers,
    ];

    /// CLI name (`fig01`, `ablations`, ...).
    pub fn name(self) -> &'static str {
        match self {
            FigureId::Fig01 => "fig01",
            FigureId::Fig01Qd => "fig01_qd",
            FigureId::Fig03 => "fig03",
            FigureId::Fig05 => "fig05",
            FigureId::Fig06 => "fig06",
            FigureId::Fig09 => "fig09",
            FigureId::Fig10 => "fig10",
            FigureId::Fig11 => "fig11",
            FigureId::Fig12 => "fig12",
            FigureId::Fig13 => "fig13",
            FigureId::Fig14 => "fig14",
            FigureId::Fig15 => "fig15",
            FigureId::Fig16 => "fig16",
            FigureId::Fig17 => "fig17",
            FigureId::Fig18 => "fig18",
            FigureId::Fig19 => "fig19",
            FigureId::Fig20 => "fig20",
            FigureId::Ablations => "ablations",
            FigureId::Breakdown => "breakdown",
            FigureId::Fig21 => "fig21",
            FigureId::FigCluster => "fig_cluster",
            FigureId::FigLayers => "fig_layers",
        }
    }

    /// Parse a CLI target name.
    pub fn parse(s: &str) -> Option<FigureId> {
        FigureId::ALL.iter().copied().find(|f| f.name() == s)
    }

    /// Whether the sweep's scheduler axis applies: the fig06 family runs
    /// the same 14-workload sweep under any scheduler.
    pub fn supports_sched_axis(self) -> bool {
        matches!(self, FigureId::Fig06 | FigureId::Fig13 | FigureId::Fig16)
    }

    /// Whether the sweep's device axis applies (figures that carry a
    /// `DeviceChoice` in their config).
    pub fn supports_device_axis(self) -> bool {
        matches!(
            self,
            FigureId::Fig12 | FigureId::Breakdown | FigureId::FigLayers
        )
    }
}

/// Which configuration scale to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// `Config::quick()` — seconds per figure.
    Quick,
    /// `Config::paper()` — the paper-scale runs.
    Paper,
}

/// One scenario: a figure at a profile and seed, with optional axis
/// overrides for figures that support them.
#[derive(Debug, Clone, Copy)]
pub struct CellRequest {
    /// Which figure.
    pub fig: FigureId,
    /// Configuration scale.
    pub profile: Profile,
    /// Experiment seed (0 reproduces the historical single-seed run).
    pub seed: u64,
    /// Scheduler override (fig06 family only; ignored elsewhere).
    pub sched: Option<SchedChoice>,
    /// Device override (fig12 / breakdown only; ignored elsewhere).
    pub device: Option<DeviceChoice>,
    /// Also produce CSV artifacts (fig01, fig12), as `--csv` did.
    pub csv: bool,
    /// Run fig12 with span tracing and emit Chrome JSON, as `--trace` did.
    pub trace: bool,
}

impl CellRequest {
    /// A plain request: no overrides, no artifacts.
    pub fn new(fig: FigureId, profile: Profile, seed: u64) -> Self {
        CellRequest {
            fig,
            profile,
            seed,
            sched: None,
            device: None,
            csv: false,
            trace: false,
        }
    }
}

/// A raw artifact produced by a cell (the caller decides where it goes).
#[derive(Debug, Clone)]
pub struct Artifact {
    /// File name, e.g. `fig01_write_burst.csv`.
    pub name: String,
    /// File contents.
    pub content: String,
}

/// What one cell produced.
#[derive(Debug, Clone)]
pub struct CellOutput {
    /// Exactly what the sequential runner prints for this target
    /// (including trailing blank lines).
    pub summary: String,
    /// Named scalar metrics, aggregated by the sweep layer.
    pub metrics: Vec<(String, f64)>,
    /// Raw artifacts (CSV / trace JSON) to write under `results/`.
    pub artifacts: Vec<Artifact>,
}

fn m(key: impl Into<String>, value: f64) -> (String, f64) {
    (key.into(), value)
}

fn run_fig06_family(req: &CellRequest, default: SchedChoice, fs: FsChoice) -> CellOutput {
    let mut cfg = match req.profile {
        Profile::Quick => fig06_scs_isolation::Config::quick(),
        Profile::Paper => fig06_scs_isolation::Config::paper(),
    };
    cfg.seed = req.seed;
    let sched = req.sched.unwrap_or(default);
    let r = fig06_scs_isolation::run_with(&cfg, sched, fs);
    CellOutput {
        summary: format!("{r}\n\n"),
        metrics: vec![m("a_mean_mbps", r.a_mean), m("a_stddev_mbps", r.a_stddev)],
        artifacts: Vec::new(),
    }
}

fn run_fig12(req: &CellRequest) -> CellOutput {
    use fig12_fsync_isolation as fig12;
    let mut cfg = match (req.device, req.profile) {
        (Some(DeviceChoice::Ssd), _) => fig12::Config::quick_ssd(),
        (_, Profile::Quick) => fig12::Config::quick_hdd(),
        (_, Profile::Paper) => fig12::Config::paper_hdd(),
    };
    cfg.seed = req.seed;
    let mut artifacts = Vec::new();
    let r = if req.trace {
        let (r, [block_json, split_json]) = fig12::run_traced(&cfg);
        artifacts.push(Artifact {
            name: "fig12_block_trace.json".into(),
            content: block_json,
        });
        artifacts.push(Artifact {
            name: "fig12_split_trace.json".into(),
            content: split_json,
        });
        r
    } else {
        fig12::run(&cfg)
    };
    if req.csv {
        for (label, s) in [("block", &r.block), ("split", &r.split)] {
            let mut out = String::from("t_s,latency_ms\n");
            for (t, l) in &s.a_latencies {
                out.push_str(&format!("{t:.3},{l:.3}\n"));
            }
            artifacts.push(Artifact {
                name: format!("fig12_hdd_{label}_timeline.csv"),
                content: out,
            });
        }
    }
    let mut metrics = vec![
        m("block_before_ms", r.block.a_before_ms),
        m("block_p95_during_ms", r.block.a_during_p95_ms),
        m("split_before_ms", r.split.a_before_ms),
        m("split_p95_during_ms", r.split.a_during_p95_ms),
    ];
    let mut summary = format!("{r}\n\n");
    // The legacy runner follows the HDD table with a quick SSD run; keep
    // that composite unless a device override pinned the cell to one.
    if req.device.is_none() {
        let mut ssd = fig12::Config::quick_ssd();
        ssd.seed = req.seed;
        let rs = fig12::run(&ssd);
        metrics.push(m("ssd_block_p95_during_ms", rs.block.a_during_p95_ms));
        metrics.push(m("ssd_split_p95_during_ms", rs.split.a_during_p95_ms));
        summary.push_str(&format!("{rs}\n\n"));
    }
    CellOutput {
        summary,
        metrics,
        artifacts,
    }
}

/// Run one scenario cell. Pure apart from simulation itself: no printing,
/// no file writes, no global state.
pub fn run_cell(req: &CellRequest) -> CellOutput {
    let paper = req.profile == Profile::Paper;
    match req.fig {
        FigureId::Fig01 => {
            let mut cfg = if paper {
                crate::fig01_write_burst::Config::paper()
            } else {
                crate::fig01_write_burst::Config::quick()
            };
            cfg.seed = req.seed;
            let r = crate::fig01_write_burst::run(&cfg);
            let mut artifacts = Vec::new();
            if req.csv {
                let mut out = String::from("second,cfq_mbps,split_mbps\n");
                let n = r.cfq_idle.a_mbps.len().max(r.split_token.a_mbps.len());
                for i in 0..n {
                    out.push_str(&format!(
                        "{},{:.2},{:.2}\n",
                        i,
                        r.cfq_idle.a_mbps.get(i).copied().unwrap_or(0.0),
                        r.split_token.a_mbps.get(i).copied().unwrap_or(0.0)
                    ));
                }
                artifacts.push(Artifact {
                    name: "fig01_write_burst.csv".into(),
                    content: out,
                });
            }
            CellOutput {
                summary: format!("{r}\n\n"),
                metrics: vec![
                    m("cfq_before_mbps", r.cfq_idle.before),
                    m("cfq_after_mbps", r.cfq_idle.after),
                    m("split_before_mbps", r.split_token.before),
                    m("split_after_mbps", r.split_token.after),
                ],
                artifacts,
            }
        }
        FigureId::Fig01Qd => {
            let mut cfg = if paper {
                crate::fig01_qd::Config::paper()
            } else {
                crate::fig01_qd::Config::quick()
            };
            cfg.burst.seed = req.seed;
            let r = crate::fig01_qd::run(&cfg);
            let mut metrics = Vec::new();
            for row in &r.rows {
                metrics.push(m(format!("cfq_after_mbps_d{}", row.depth), row.cfq.after));
                metrics.push(m(format!("cfq_loss_d{}", row.depth), row.cfq_degradation()));
                metrics.push(m(
                    format!("split_after_mbps_d{}", row.depth),
                    row.split.after,
                ));
            }
            CellOutput {
                summary: format!("{r}\n\n"),
                metrics,
                artifacts: Vec::new(),
            }
        }
        FigureId::Fig03 => {
            let mut cfg = if paper {
                crate::fig03_cfq_async_unfair::Config::paper()
            } else {
                crate::fig03_cfq_async_unfair::Config::quick()
            };
            cfg.seed = req.seed;
            let r = crate::fig03_cfq_async_unfair::run(&cfg);
            CellOutput {
                summary: format!("{r}\n\n"),
                metrics: vec![
                    m("deviation", r.deviation),
                    m("observed_prio4_pct", r.observed_prio_pct[4]),
                ],
                artifacts: Vec::new(),
            }
        }
        FigureId::Fig05 => {
            let mut cfg = if paper {
                crate::fig05_latency_dependency::Config::paper()
            } else {
                crate::fig05_latency_dependency::Config::quick()
            };
            cfg.seed = req.seed;
            let r = crate::fig05_latency_dependency::run(&cfg);
            let metrics = r
                .points
                .iter()
                .flat_map(|p| {
                    let kb = p.b_bytes / KB;
                    [
                        m(format!("a_mean_ms_{kb}kb"), p.a_mean_ms),
                        m(format!("a_p95_ms_{kb}kb"), p.a_p95_ms),
                    ]
                })
                .collect();
            CellOutput {
                summary: format!("{r}\n\n"),
                metrics,
                artifacts: Vec::new(),
            }
        }
        FigureId::Fig06 => run_fig06_family(req, SchedChoice::ScsToken, FsChoice::Ext4),
        FigureId::Fig13 => run_fig06_family(req, SchedChoice::SplitToken, FsChoice::Ext4),
        FigureId::Fig16 => run_fig06_family(req, SchedChoice::SplitToken, FsChoice::Xfs),
        FigureId::Fig09 => {
            let mut cfg = if paper {
                crate::fig09_time_overhead::Config::paper()
            } else {
                crate::fig09_time_overhead::Config::quick()
            };
            cfg.seed = req.seed;
            let r = crate::fig09_time_overhead::run(&cfg);
            let metrics = r
                .points
                .iter()
                .flat_map(|p| {
                    [
                        m(format!("block_mbps_{}t", p.threads), p.block_mbps),
                        m(format!("split_mbps_{}t", p.threads), p.split_mbps),
                    ]
                })
                .collect();
            CellOutput {
                summary: format!("{r}\n\n"),
                metrics,
                artifacts: Vec::new(),
            }
        }
        FigureId::Fig10 => {
            let mut cfg = if paper {
                crate::fig10_space_overhead::Config::paper()
            } else {
                crate::fig10_space_overhead::Config::quick()
            };
            cfg.seed = req.seed;
            let r = crate::fig10_space_overhead::run(&cfg);
            let metrics = r
                .points
                .iter()
                .map(|p| {
                    m(
                        format!("max_tag_kb_r{:02.0}", p.ratio * 100.0),
                        p.max_bytes as f64 / 1024.0,
                    )
                })
                .collect();
            CellOutput {
                summary: format!("{r}\n\n"),
                metrics,
                artifacts: Vec::new(),
            }
        }
        FigureId::Fig11 => {
            let mut cfg = if paper {
                crate::fig11_afq::Config::paper()
            } else {
                crate::fig11_afq::Config::quick()
            };
            cfg.seed = req.seed;
            let r = crate::fig11_afq::run(&cfg);
            let metrics = r
                .panels
                .iter()
                .map(|p| {
                    let wl = match p.workload {
                        crate::fig11_afq::Workload::SeqRead => "seq_read",
                        crate::fig11_afq::Workload::AsyncWrite => "async_write",
                        crate::fig11_afq::Workload::SyncRandWrite => "sync_rand_write",
                        crate::fig11_afq::Workload::MemOverwrite => "mem_overwrite",
                    };
                    m(format!("dev_{}_{wl}", p.sched), p.deviation)
                })
                .collect();
            CellOutput {
                summary: format!("{r}\n\n"),
                metrics,
                artifacts: Vec::new(),
            }
        }
        FigureId::Fig12 => run_fig12(req),
        FigureId::Fig14 => {
            let mut cfg = if paper {
                crate::fig14_token_comparison::Config::paper()
            } else {
                crate::fig14_token_comparison::Config::quick()
            };
            cfg.seed = req.seed;
            let r = crate::fig14_token_comparison::run(&cfg);
            let mut metrics = vec![m("a_alone_mbps", r.a_alone_mbps)];
            for (sys, points) in [("scs", &r.scs), ("split", &r.split)] {
                for p in points {
                    let wl = p.workload.label().replace('-', "_");
                    metrics.push(m(format!("{sys}_a_mbps_{wl}"), p.a_mbps));
                    metrics.push(m(format!("{sys}_b_mbps_{wl}"), p.b_mbps));
                }
            }
            CellOutput {
                summary: format!("{r}\n\n"),
                metrics,
                artifacts: Vec::new(),
            }
        }
        FigureId::Fig15 => {
            let mut cfg = if paper {
                crate::fig15_thread_scaling::Config::paper()
            } else {
                crate::fig15_thread_scaling::Config::quick()
            };
            cfg.seed = req.seed;
            let r = crate::fig15_thread_scaling::run(&cfg);
            let metrics = r
                .points
                .iter()
                .map(|p| {
                    let act = p.activity.label().replace('-', "_");
                    m(format!("a_mbps_{act}_{}t", p.threads), p.a_mbps)
                })
                .collect();
            CellOutput {
                summary: format!("{r}\n\n"),
                metrics,
                artifacts: Vec::new(),
            }
        }
        FigureId::Fig17 => {
            let mut cfg = if paper {
                crate::fig17_metadata::Config::paper()
            } else {
                crate::fig17_metadata::Config::quick()
            };
            cfg.seed = req.seed;
            let r = crate::fig17_metadata::run(&cfg);
            let mut metrics = Vec::new();
            for (fs, points) in [("ext4", &r.ext4), ("xfs", &r.xfs)] {
                for p in points {
                    metrics.push(m(format!("{fs}_a_mbps_{}ms", p.sleep_ms), p.a_mbps));
                    metrics.push(m(
                        format!("{fs}_creates_per_sec_{}ms", p.sleep_ms),
                        p.b_creates_per_sec,
                    ));
                }
            }
            CellOutput {
                summary: format!("{r}\n\n"),
                metrics,
                artifacts: Vec::new(),
            }
        }
        FigureId::Fig18 => {
            let mut cfg = if paper {
                crate::fig18_sqlite::Config::paper()
            } else {
                crate::fig18_sqlite::Config::quick()
            };
            cfg.seed = req.seed;
            let r = crate::fig18_sqlite::run(&cfg);
            let mut metrics = Vec::new();
            for (sys, points) in [("block", &r.block), ("split", &r.split)] {
                for p in points {
                    metrics.push(m(format!("{sys}_p99_ms_t{}", p.threshold), p.p99_ms));
                    metrics.push(m(format!("{sys}_p999_ms_t{}", p.threshold), p.p999_ms));
                }
            }
            CellOutput {
                summary: format!("{r}\n\n"),
                metrics,
                artifacts: Vec::new(),
            }
        }
        FigureId::Fig19 => {
            let mut cfg = if paper {
                crate::fig19_postgres::Config::paper()
            } else {
                crate::fig19_postgres::Config::quick()
            };
            cfg.seed = req.seed;
            let r = crate::fig19_postgres::run(&cfg);
            let metrics = [&r.block, &r.split_pdflush, &r.split]
                .iter()
                .flat_map(|s| {
                    let sys = s.sched.replace('-', "_");
                    [
                        m(format!("{sys}_p999_ms"), s.p999_ms),
                        m(format!("{sys}_max_ms"), s.max_ms),
                        m(format!("{sys}_miss_pct"), s.miss_pct),
                    ]
                })
                .collect();
            CellOutput {
                summary: format!("{r}\n\n"),
                metrics,
                artifacts: Vec::new(),
            }
        }
        FigureId::Fig20 => {
            let mut cfg = if paper {
                crate::fig20_qemu::Config::paper()
            } else {
                crate::fig20_qemu::Config::quick()
            };
            cfg.seed = req.seed;
            let r = crate::fig20_qemu::run(&cfg);
            let mut metrics = Vec::new();
            for (sys, points) in [("scs", &r.scs), ("split", &r.split)] {
                for p in points {
                    let wl = p.workload.label().replace('-', "_");
                    metrics.push(m(format!("{sys}_a_mbps_{wl}"), p.a_mbps));
                    metrics.push(m(format!("{sys}_b_mbps_{wl}"), p.b_mbps));
                }
            }
            CellOutput {
                summary: format!("{r}\n\n"),
                metrics,
                artifacts: Vec::new(),
            }
        }
        FigureId::Ablations => {
            // The legacy runner pinned ablation durations regardless of
            // `--paper`; keep that so `all` output is stable.
            let b = ablations::burst_ablation(SimDuration::from_secs(20), req.seed);
            let t = ablations::tag_ablation(SimDuration::from_secs(20), req.seed);
            let g = ablations::gate_ablation(SimDuration::from_secs(15), req.seed);
            CellOutput {
                summary: format!("{b}\n{t}\n{g}\n"),
                metrics: vec![
                    m("burst_full_after_mbps", b.full_after),
                    m("burst_no_prompt_after_mbps", b.no_prompt_after),
                    m("tag_with_tags_b_mbps", t.with_tags_b),
                    m("tag_without_tags_b_mbps", t.without_tags_b),
                    m("gate_with_ratio", g.with_gate_ratio),
                    m("gate_without_ratio", g.without_gate_ratio),
                ],
                artifacts: Vec::new(),
            }
        }
        FigureId::Breakdown => {
            let mut cfg = if paper {
                breakdown::Config::paper()
            } else {
                breakdown::Config::quick()
            };
            cfg.seed = req.seed;
            if let Some(d) = req.device {
                cfg.device = d;
            }
            let r = breakdown::run(&cfg);
            let metrics = r
                .rows
                .iter()
                .map(|row| {
                    m(
                        format!("{}_fsync_mean_ms", row.sched.replace('-', "_")),
                        row.fsync.mean_ms(),
                    )
                })
                .collect();
            CellOutput {
                summary: format!("{r}\n\n"),
                metrics,
                artifacts: Vec::new(),
            }
        }
        FigureId::Fig21 => {
            let mut cfg = if paper {
                crate::fig21_hdfs::Config::paper()
            } else {
                crate::fig21_hdfs::Config::quick()
            };
            cfg.seed = req.seed;
            let r = crate::fig21_hdfs::run(&cfg);
            let mut metrics = Vec::new();
            for (blocks, points) in [("large", &r.large_blocks), ("small", &r.small_blocks)] {
                for p in points {
                    metrics.push(m(
                        format!("{blocks}_throttled_mbps_cap{:.0}", p.cap_mbps),
                        p.throttled_mbps,
                    ));
                    metrics.push(m(
                        format!("{blocks}_unthrottled_mbps_cap{:.0}", p.cap_mbps),
                        p.unthrottled_mbps,
                    ));
                }
            }
            CellOutput {
                summary: format!("{r}\n\n"),
                metrics,
                artifacts: Vec::new(),
            }
        }
        FigureId::FigCluster => {
            let mut cfg = if paper {
                crate::fig_cluster::Config::paper()
            } else {
                crate::fig_cluster::Config::quick()
            };
            cfg.seed = req.seed;
            let r = crate::fig_cluster::run(&cfg);
            let mut metrics = Vec::new();
            for run in [&r.split, &r.cfq] {
                let sys = run.sched.replace('-', "_");
                for phase in [&run.before, &run.during] {
                    metrics.push(m(
                        format!("{sys}_{}_put_p99_ms", phase.label),
                        phase.slo.put_e2e.p99,
                    ));
                    metrics.push(m(
                        format!("{sys}_{}_get_p99_ms", phase.label),
                        phase.slo.get_e2e.p99,
                    ));
                }
                metrics.push(m(format!("{sys}_put_p99_blowup"), run.put_p99_blowup()));
            }
            CellOutput {
                summary: format!("{r}\n\n"),
                metrics,
                artifacts: Vec::new(),
            }
        }
        FigureId::FigLayers => {
            let mut cfg = match (req.device, req.profile) {
                (Some(DeviceChoice::Ssd), _) => crate::fig_layers::Config::quick_ssd(),
                (_, Profile::Quick) => crate::fig_layers::Config::quick_hdd(),
                (_, Profile::Paper) => crate::fig_layers::Config::paper_hdd(),
            };
            cfg.seed = req.seed;
            let r = crate::fig_layers::run(&cfg);
            let mut metrics = vec![
                m("cap_bound_mbps", r.cap_bound_mbps()),
                m("solver_adjustments", r.solver_adjustments as f64),
            ];
            for p in [&r.serial, &r.queued] {
                let plane = p.plane.replace('=', "");
                metrics.push(m(format!("{plane}_solo_p99_ms"), p.solo.lat_p99_ms));
                metrics.push(m(format!("{plane}_layered_p99_ms"), p.layered.lat_p99_ms));
                metrics.push(m(format!("{plane}_flat_p99_ms"), p.flat.lat_p99_ms));
                metrics.push(m(
                    format!("{plane}_layered_capped_mbps"),
                    p.layered.capped_mbps,
                ));
                metrics.push(m(format!("{plane}_flat_capped_mbps"), p.flat.capped_mbps));
                metrics.push(m(
                    format!("{plane}_audit_violations"),
                    p.layered.audit_violations as f64,
                ));
            }
            CellOutput {
                summary: format!("{r}\n\n"),
                metrics,
                artifacts: Vec::new(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_target_parses_by_name() {
        for f in FigureId::ALL {
            assert_eq!(FigureId::parse(f.name()), Some(f));
        }
        assert_eq!(FigureId::parse("fig99"), None);
        assert_eq!(FigureId::parse("all"), None);
    }

    #[test]
    fn axis_support_is_restricted() {
        assert!(FigureId::Fig06.supports_sched_axis());
        assert!(FigureId::Fig12.supports_device_axis());
        assert!(!FigureId::Fig01.supports_sched_axis());
        assert!(!FigureId::Fig01.supports_device_axis());
    }

    #[test]
    fn a_cell_produces_summary_and_metrics() {
        // fig03 is the cheapest deterministic figure.
        let out = run_cell(&CellRequest::new(FigureId::Fig03, Profile::Quick, 0));
        assert!(out.summary.contains("Figure 3"));
        assert!(out.summary.ends_with("\n\n"));
        assert!(out.metrics.iter().any(|(k, _)| k == "deviation"));
        assert!(out.artifacts.is_empty());
    }
}
