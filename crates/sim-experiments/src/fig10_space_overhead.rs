//! Figure 10 — tag-memory (space) overhead.
//!
//! The split framework's only memory cost is the cause tags on dirty
//! buffers. Under a write-heavy workload (the paper instruments an HDFS
//! worker), average and maximum live tag bytes are measured as a function
//! of the dirty-ratio setting — more buffering, more tags.

use sim_core::SimDuration;
use sim_workloads::SeqWriter;

use crate::setup::{build_world, SchedChoice, Setup};
use crate::table::{f1, Table};
use crate::{GB, MB};

/// Configuration.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Simulated run time per ratio.
    pub duration: SimDuration,
    /// Dirty ratios to sweep (background ratio tracks at half).
    pub ratios: [f64; 4],
    /// Writer thread count.
    pub writers: usize,
    /// Modeled RAM.
    pub mem: u64,
    /// Experiment seed (0 = historical run).
    pub seed: u64,
}

impl Config {
    /// Small run for tests.
    pub fn quick() -> Self {
        Config {
            duration: SimDuration::from_secs(10),
            ratios: [0.10, 0.20, 0.35, 0.50],
            writers: 8,
            mem: 512 * MB,
            seed: 0,
        }
    }

    /// Paper-scale run (8 GB worker).
    pub fn paper() -> Self {
        Config {
            duration: SimDuration::from_secs(30),
            mem: 2 * GB,
            ..Self::quick()
        }
    }
}

/// One sweep point.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    /// Dirty ratio.
    pub ratio: f64,
    /// Average live tag bytes.
    pub avg_bytes: f64,
    /// Peak live tag bytes.
    pub max_bytes: u64,
    /// Peak tag bytes as a fraction of RAM (%).
    pub max_pct_of_ram: f64,
}

/// Result.
#[derive(Debug, Clone)]
pub struct FigResult {
    /// One point per ratio.
    pub points: Vec<Point>,
}

/// Run the sweep.
pub fn run(cfg: &Config) -> FigResult {
    let mut points = Vec::new();
    for &ratio in &cfg.ratios {
        let (mut w, k) = build_world(
            Setup::new(SchedChoice::SplitToken)
                .mem(cfg.mem)
                .dirty_ratio(ratio)
                .seed(cfg.seed),
        );
        for _ in 0..cfg.writers {
            let file = w.prealloc_file(k, 4 * GB, true);
            w.spawn(k, Box::new(SeqWriter::new(file, 4 * GB, MB)));
        }
        w.run_for(cfg.duration);
        let tm = w.kernel(k).cache().tagmem();
        points.push(Point {
            ratio,
            avg_bytes: tm.avg_bytes(),
            max_bytes: tm.max_bytes(),
            max_pct_of_ram: tm.max_bytes() as f64 / cfg.mem as f64 * 100.0,
        });
    }
    FigResult { points }
}

impl std::fmt::Display for FigResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Figure 10 — tag memory overhead vs dirty ratio")?;
        let mut t = Table::new(["dirty ratio", "avg tag KB", "max tag KB", "max % of RAM"]);
        for p in &self.points {
            t.row([
                format!("{:.0}%", p.ratio * 100.0),
                f1(p.avg_bytes / 1024.0),
                f1(p.max_bytes as f64 / 1024.0),
                format!("{:.3}", p.max_pct_of_ram),
            ]);
        }
        write!(f, "{}", t.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_memory_is_small_and_grows_with_dirty_ratio() {
        let r = run(&Config::quick());
        // Overhead stays well under 1% of RAM at every ratio (the paper
        // reports 0.2–0.6%).
        for p in &r.points {
            assert!(p.max_bytes > 0, "tags must exist: {p:?}");
            assert!(p.max_pct_of_ram < 1.0, "tag overhead must stay tiny: {p:?}");
        }
        // More buffering → more live tags.
        let first = r.points.first().unwrap();
        let last = r.points.last().unwrap();
        assert!(
            last.max_bytes > first.max_bytes,
            "peak tags should grow with dirty ratio: {} vs {}",
            last.max_bytes,
            first.max_bytes
        );
    }
}
