//! Figure 9 — framework time overhead.
//!
//! A no-op scheduler in the split framework (every hook wired) against the
//! no-op block elevator, with 1–100 threads writing to an SSD. The
//! simulated results must be identical — the framework adds information,
//! not policy — and the wall-clock cost of the hooks is measured by the
//! companion Criterion bench (`fig09_time_overhead` in `crates/bench`).

use sim_core::SimDuration;
use sim_workloads::SeqWriter;

use crate::setup::{build_world, SchedChoice, Setup};
use crate::table::{f1, Table};
use crate::{GB, KB};

/// Configuration.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Simulated run time.
    pub duration: SimDuration,
    /// Thread counts to sweep.
    pub threads: [usize; 3],
    /// Experiment seed (0 = historical run).
    pub seed: u64,
}

impl Config {
    /// Small run for tests.
    pub fn quick() -> Self {
        Config {
            duration: SimDuration::from_secs(5),
            threads: [1, 10, 100],
            seed: 0,
        }
    }

    /// Paper-scale run.
    pub fn paper() -> Self {
        Config {
            duration: SimDuration::from_secs(20),
            ..Self::quick()
        }
    }
}

/// One sweep point.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    /// Number of threads.
    pub threads: usize,
    /// Aggregate throughput under the block-level no-op (MB/s).
    pub block_mbps: f64,
    /// Aggregate throughput under the split no-op (MB/s).
    pub split_mbps: f64,
}

/// Result.
#[derive(Debug, Clone)]
pub struct FigResult {
    /// One point per thread count.
    pub points: Vec<Point>,
}

fn throughput(cfg: &Config, sched: SchedChoice, threads: usize) -> f64 {
    let (mut w, k) = build_world(Setup::new(sched).on_ssd().seed(cfg.seed));
    let mut pids = Vec::new();
    for _ in 0..threads {
        let file = w.prealloc_file(k, GB, true);
        pids.push(w.spawn(k, Box::new(SeqWriter::new(file, GB, 64 * KB))));
    }
    w.run_for(cfg.duration);
    let stats = &w.kernel(k).stats;
    let total: u64 = pids
        .iter()
        .map(|p| stats.proc(*p).map(|s| s.write_bytes).unwrap_or(0))
        .sum();
    total as f64 / 1e6 / cfg.duration.as_secs_f64()
}

/// Run the sweep.
pub fn run(cfg: &Config) -> FigResult {
    let points = cfg
        .threads
        .iter()
        .map(|&n| Point {
            threads: n,
            block_mbps: throughput(cfg, SchedChoice::Noop, n),
            split_mbps: throughput(cfg, SchedChoice::SplitNoop, n),
        })
        .collect();
    FigResult { points }
}

impl std::fmt::Display for FigResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Figure 9 — framework time overhead (no-op vs no-op, SSD)"
        )?;
        let mut t = Table::new(["threads", "block-noop MB/s", "split-noop MB/s", "delta %"]);
        for p in &self.points {
            let delta = (p.split_mbps - p.block_mbps) / p.block_mbps * 100.0;
            t.row([
                p.threads.to_string(),
                f1(p.block_mbps),
                f1(p.split_mbps),
                format!("{delta:+.2}"),
            ]);
        }
        write!(f, "{}", t.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_framework_adds_no_simulated_overhead() {
        let r = run(&Config::quick());
        for p in &r.points {
            let rel = (p.split_mbps - p.block_mbps).abs() / p.block_mbps;
            assert!(
                rel < 0.02,
                "split vs block no-op must match at {} threads: {} vs {}",
                p.threads,
                p.split_mbps,
                p.block_mbps
            );
        }
        // And the sweep scales: more threads, no less throughput.
        assert!(r.points[2].block_mbps >= 0.5 * r.points[0].block_mbps);
    }
}
