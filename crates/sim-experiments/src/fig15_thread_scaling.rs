//! Figure 15 — Split-Token scalability in B's thread count.
//!
//! A reads sequentially; B is a *group* of n threads sharing one token
//! bucket, doing disk reads, cached reads, cached overwrites, or pure spin
//! loops. For disk-bound B the thread count is irrelevant (the bucket is
//! shared). For memory/CPU-bound B, A eventually suffers — not from I/O,
//! but from CPU contention, which an I/O scheduler cannot fix (the paper
//! confirms this with the spin-loop line).

use sim_core::SimDuration;
use sim_kernel::World;
use sim_workloads::{MemOverwriter, SeqReader, Spinner};
use split_core::SchedAttr;

use crate::setup::{build_world, SchedChoice, Setup};
use crate::table::{f1, Table};
use crate::{GB, KB, MB};

/// B's activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BActivity {
    /// Sequential disk reads (throttled as a group).
    SeqRead,
    /// Cached reads.
    ReadMem,
    /// Cached overwrites.
    WriteMem,
    /// Pure CPU spin, no I/O at all.
    Spin,
}

impl BActivity {
    /// All activities.
    pub fn all() -> [BActivity; 4] {
        [
            BActivity::SeqRead,
            BActivity::ReadMem,
            BActivity::WriteMem,
            BActivity::Spin,
        ]
    }

    /// Label.
    pub fn label(self) -> &'static str {
        match self {
            BActivity::SeqRead => "seq-read",
            BActivity::ReadMem => "read-mem",
            BActivity::WriteMem => "write-mem",
            BActivity::Spin => "spin",
        }
    }
}

/// Configuration.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Simulated time per point.
    pub duration: SimDuration,
    /// Thread counts to sweep.
    pub threads: [usize; 4],
    /// Cores on the machine (the paper uses a 32-core node).
    pub cores: u32,
    /// B group throttle.
    pub b_rate: u64,
    /// Experiment seed (0 = historical run).
    pub seed: u64,
}

impl Config {
    /// Small run for tests.
    pub fn quick() -> Self {
        Config {
            duration: SimDuration::from_secs(5),
            threads: [1, 16, 256, 1024],
            cores: 32,
            b_rate: MB,
            seed: 0,
        }
    }

    /// Paper-scale run.
    pub fn paper() -> Self {
        Config {
            duration: SimDuration::from_secs(20),
            ..Self::quick()
        }
    }
}

/// One point: A's throughput with n B threads of one activity.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    /// B activity.
    pub activity: BActivity,
    /// B thread count.
    pub threads: usize,
    /// A's throughput (MB/s).
    pub a_mbps: f64,
}

/// Full sweep.
#[derive(Debug, Clone)]
pub struct FigResult {
    /// Every (activity, n) point.
    pub points: Vec<Point>,
}

fn spawn_b(
    w: &mut World,
    k: sim_core::KernelId,
    act: BActivity,
    shared_mem_file: sim_core::FileId,
    i: usize,
) -> sim_core::Pid {
    match act {
        BActivity::SeqRead => {
            let f = w.prealloc_file(k, 2 * GB, true);
            w.spawn(k, Box::new(SeqReader::new(f, 2 * GB, 256 * KB)))
        }
        // The memory-bound threads share one small, resident working set
        // (as in the paper); only the first dirtying is ever charged.
        BActivity::ReadMem => w.spawn(
            k,
            Box::new(SeqReader::new(shared_mem_file, 4 * MB, 64 * KB)),
        ),
        BActivity::WriteMem => w.spawn(
            k,
            Box::new(MemOverwriter::new(shared_mem_file, 2 * MB, 64 * KB)),
        ),
        BActivity::Spin => {
            let _ = i;
            w.spawn(k, Box::new(Spinner))
        }
    }
}

/// Run one point.
pub fn run_point(cfg: &Config, act: BActivity, threads: usize) -> Point {
    let (mut w, k) = build_world(
        Setup::new(SchedChoice::SplitToken)
            .cores(cfg.cores)
            .seed(cfg.seed),
    );
    let a_file = w.prealloc_file(k, 4 * GB, true);
    let a = w.spawn(k, Box::new(SeqReader::new(a_file, 4 * GB, MB)));
    let shared_mem_file = w.prealloc_file(k, 8 * MB, true);
    w.kernel_mut(k)
        .cache_mut()
        .fill(shared_mem_file, 0, 8 * MB / sim_core::PAGE_SIZE);
    for i in 0..threads {
        let b = spawn_b(&mut w, k, act, shared_mem_file, i);
        // All B threads share one bucket (the paper: "all threads of B
        // share the same I/O limit").
        w.configure(k, b, SchedAttr::TokenGroup(1));
        if i == 0 {
            w.configure(k, b, SchedAttr::TokenRate(cfg.b_rate));
        }
    }
    w.run_for(cfg.duration);
    Point {
        activity: act,
        threads,
        a_mbps: w.kernel(k).stats.read_mbps(a, cfg.duration),
    }
}

/// Run the full sweep.
pub fn run(cfg: &Config) -> FigResult {
    let mut points = Vec::new();
    for act in BActivity::all() {
        for &n in &cfg.threads {
            points.push(run_point(cfg, act, n));
        }
    }
    FigResult { points }
}

impl std::fmt::Display for FigResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Figure 15 — A's throughput vs B's thread count (Split-Token)"
        )?;
        let mut t = Table::new(["B activity", "B threads", "A MB/s"]);
        for p in &self.points {
            t.row([
                p.activity.label().to_string(),
                p.threads.to_string(),
                f1(p.a_mbps),
            ]);
        }
        write!(f, "{}", t.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disk_bound_b_threads_do_not_hurt_a() {
        let cfg = Config::quick();
        let one = run_point(&cfg, BActivity::SeqRead, 1);
        let many = run_point(&cfg, BActivity::SeqRead, 64);
        assert!(
            (many.a_mbps - one.a_mbps).abs() / one.a_mbps < 0.15,
            "thread count must not matter for throttled disk I/O: {} vs {}",
            one.a_mbps,
            many.a_mbps
        );
    }

    #[test]
    fn spinning_threads_hurt_a_via_cpu_not_io() {
        let cfg = Config::quick();
        let few = run_point(&cfg, BActivity::Spin, 1);
        let some = run_point(&cfg, BActivity::Spin, 256);
        let many = run_point(&cfg, BActivity::Spin, 1024);
        assert!(
            some.a_mbps < 0.85 * few.a_mbps,
            "256 spinners on 32 cores must slow A: {} vs {}",
            few.a_mbps,
            some.a_mbps
        );
        assert!(
            many.a_mbps < 0.55 * few.a_mbps,
            "1024 spinners must crush A: {} vs {}",
            few.a_mbps,
            many.a_mbps
        );
    }

    #[test]
    fn mem_bound_b_only_hurts_beyond_core_count() {
        let cfg = Config::quick();
        let small = run_point(&cfg, BActivity::WriteMem, 16);
        let large = run_point(&cfg, BActivity::WriteMem, 1024);
        assert!(
            large.a_mbps < 0.8 * small.a_mbps,
            "beyond the cores, cached writers steal CPU: {} vs {}",
            small.a_mbps,
            large.a_mbps
        );
        // At 16 threads (half the cores) A is fine.
        let one = run_point(&cfg, BActivity::WriteMem, 1);
        assert!(small.a_mbps > 0.8 * one.a_mbps);
    }
}
