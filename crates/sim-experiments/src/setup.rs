//! Shared experiment setup: build a world with a chosen scheduler, device
//! and file system.

use sim_block::{BlockDeadline, Cfq, DeadlineConfig, Noop};
use sim_cache::CacheConfig;
use sim_core::{ChaosConfig, KernelId};
use sim_device::{HddModel, SsdModel};
pub use sim_kernel::FsChoice;
use sim_kernel::{DeviceKind, KernelConfig, QueuePlane, World};
use split_core::{BlockOnly, IoSched};
use split_layered::{LayerSpec, Layered, LayeredConfig, SpecError};
use split_schedulers::{Afq, ScsToken, SplitDeadline, SplitNoop, SplitToken};

/// Which scheduler to install.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedChoice {
    /// Block-level FIFO.
    Noop,
    /// Linux CFQ (block level).
    Cfq,
    /// Linux deadline elevator (block level), stock expiries.
    BlockDeadline,
    /// Block-Deadline with explicit default expiries (ms): (read, write).
    BlockDeadlineWith(u64, u64),
    /// The SCS-Token baseline (gates reads).
    ScsToken,
    /// AFQ (§5.1).
    Afq,
    /// Split-Deadline, scheduler-owned writeback (§5.2).
    SplitDeadline,
    /// Split-Deadline, pdflush still running ("Split-Pdflush", Fig 19).
    SplitPdflush,
    /// Split-Token (§5.3).
    SplitToken,
    /// All split hooks wired, no policy (Fig 9 overhead probe).
    SplitNoop,
    /// The hierarchical layer plane over its default 3-layer tree
    /// (latency / capped / rest, partitioned by pid mod 3). Custom
    /// trees are built with [`build_layered`] and installed via
    /// [`build_world_with`].
    Layered,
}

impl SchedChoice {
    /// Instantiate the scheduler (also used by the check harness to pair
    /// each policy with a sabotage wrapper).
    pub fn build(self) -> Box<dyn IoSched> {
        match self {
            SchedChoice::Noop => Box::new(BlockOnly::new(Noop::new())),
            SchedChoice::Cfq => Box::new(BlockOnly::new(Cfq::new())),
            SchedChoice::BlockDeadline => Box::new(BlockOnly::new(BlockDeadline::new())),
            SchedChoice::BlockDeadlineWith(r, w) => {
                Box::new(BlockOnly::new(BlockDeadline::with_config(DeadlineConfig {
                    read_expire: sim_core::SimDuration::from_millis(r),
                    write_expire: sim_core::SimDuration::from_millis(w),
                    ..Default::default()
                })))
            }
            SchedChoice::ScsToken => Box::new(ScsToken::new()),
            SchedChoice::Afq => Box::new(Afq::new()),
            SchedChoice::SplitDeadline => Box::new(SplitDeadline::new()),
            SchedChoice::SplitPdflush => Box::new(SplitDeadline::pdflush_variant()),
            SchedChoice::SplitToken => Box::new(SplitToken::new()),
            SchedChoice::SplitNoop => Box::new(SplitNoop::new()),
            SchedChoice::Layered => Box::new(
                build_layered(default_layer_tree(), LayeredConfig::default())
                    .expect("default layer tree is valid"),
            ),
        }
    }

    /// Whether the SCS architecture (reads pass the gate).
    pub fn gates_reads(self) -> bool {
        matches!(self, SchedChoice::ScsToken)
    }

    /// Whether the kernel's own pdflush should run.
    pub fn wants_pdflush(self) -> bool {
        !matches!(self, SchedChoice::SplitDeadline)
    }

    /// Short name for tables.
    pub fn name(self) -> &'static str {
        match self {
            SchedChoice::Noop => "noop",
            SchedChoice::Cfq => "cfq",
            SchedChoice::BlockDeadline | SchedChoice::BlockDeadlineWith(..) => "block-deadline",
            SchedChoice::ScsToken => "scs-token",
            SchedChoice::Afq => "afq",
            SchedChoice::SplitDeadline => "split-deadline",
            SchedChoice::SplitPdflush => "split-pdflush",
            SchedChoice::SplitToken => "split-token",
            SchedChoice::SplitNoop => "split-noop",
            SchedChoice::Layered => "layered",
        }
    }
}

/// Resolve a child-scheduler name for a layer. Every flat scheduler is
/// eligible; "layered" itself is rejected (one level of nesting — the
/// tree composes flat children).
pub fn resolve_layer_child(name: &str) -> Option<Box<dyn IoSched>> {
    let choice = match name {
        "noop" => SchedChoice::Noop,
        "cfq" => SchedChoice::Cfq,
        "block-deadline" => SchedChoice::BlockDeadline,
        "scs-token" => SchedChoice::ScsToken,
        "afq" => SchedChoice::Afq,
        "split-deadline" => SchedChoice::SplitDeadline,
        "split-pdflush" => SchedChoice::SplitPdflush,
        "split-token" => SchedChoice::SplitToken,
        "split-noop" => SchedChoice::SplitNoop,
        _ => return None,
    };
    Some(choice.build())
}

/// Build a layer tree with children resolved from the flat scheduler
/// registry. Unknown child names (including "layered") are rejected.
pub fn build_layered(specs: Vec<LayerSpec>, cfg: LayeredConfig) -> Result<Layered, SpecError> {
    Layered::build(specs, cfg, &mut |name| resolve_layer_child(name))
}

/// The default 3-layer tree `SchedChoice::Layered` installs: a latency
/// layer over the deadline elevator, a bandwidth-capped layer over CFQ,
/// and a double-weight default layer over Split-Token, partitioned by
/// pid mod 3 so the fuzz matrix exercises every layer deterministically.
pub fn default_layer_tree() -> Vec<LayerSpec> {
    split_layered::parse_layers(
        "lat:pidmod=3,1:latency:block-deadline;\
         cap:pidmod=3,2:cap=8388608:cfq;\
         rest:default:share+weight=2:split-token",
    )
    .expect("default tree parses")
}

/// Which device model to attach.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceChoice {
    /// 500 GB 7200 RPM disk.
    Hdd,
    /// 80 GB flash SSD.
    Ssd,
}

impl DeviceChoice {
    /// Instantiate the device model.
    pub fn build(self) -> DeviceKind {
        match self {
            DeviceChoice::Hdd => DeviceKind::Physical(Box::new(HddModel::new())),
            DeviceChoice::Ssd => DeviceKind::Physical(Box::new(SsdModel::new())),
        }
    }
}

/// Experiment machine description.
#[derive(Debug, Clone, Copy)]
pub struct Setup {
    /// Scheduler under test.
    pub sched: SchedChoice,
    /// Device model.
    pub device: DeviceChoice,
    /// File system.
    pub fs: FsChoice,
    /// Modeled RAM.
    pub mem_bytes: u64,
    /// Cores.
    pub cores: u32,
    /// Dirty ratio override (default 0.20).
    pub dirty_ratio: f64,
    /// Experiment seed. Zero (the default) reproduces the historical runs
    /// bit-for-bit; the sweep engine sets it per replicate.
    pub seed: u64,
    /// Hardware queue depth. `None` (the default) keeps the legacy
    /// serial device; `Some(d)` turns on the queued plane (NCQ/blk-mq),
    /// where `Some(1)` is byte-identical to `None`.
    pub queue_depth: Option<u32>,
    /// Adversarial timing perturbation. `None` (the default) keeps runs
    /// byte-identical to a build without the chaos plane.
    pub chaos: Option<ChaosConfig>,
}

impl Setup {
    /// A machine with the given scheduler on an HDD with ext4 and 512 MB
    /// of memory (the scaled-down default).
    pub fn new(sched: SchedChoice) -> Self {
        Setup {
            sched,
            device: DeviceChoice::Hdd,
            fs: FsChoice::Ext4,
            mem_bytes: 512 * 1024 * 1024,
            cores: 8,
            dirty_ratio: 0.20,
            seed: 0,
            queue_depth: None,
            chaos: None,
        }
    }

    /// Switch to the SSD model.
    pub fn on_ssd(mut self) -> Self {
        self.device = DeviceChoice::Ssd;
        self
    }

    /// Switch to XFS (partial integration).
    pub fn on_xfs(mut self) -> Self {
        self.fs = FsChoice::Xfs;
        self
    }

    /// Override memory size.
    pub fn mem(mut self, bytes: u64) -> Self {
        self.mem_bytes = bytes;
        self
    }

    /// Override core count.
    pub fn cores(mut self, n: u32) -> Self {
        self.cores = n;
        self
    }

    /// Override the dirty ratio (background ratio tracks at half).
    pub fn dirty_ratio(mut self, r: f64) -> Self {
        self.dirty_ratio = r;
        self
    }

    /// Override the experiment seed (varies file-system layout decisions).
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Run on the queued-device plane at hardware queue depth `d`.
    pub fn queue_depth(mut self, d: u32) -> Self {
        self.queue_depth = Some(d);
        self
    }

    /// Run under the chaos plane (adversarial timing perturbation).
    pub fn chaos(mut self, cfg: ChaosConfig) -> Self {
        self.chaos = Some(cfg);
        self
    }
}

/// The kernel configuration a setup implies (shared with the check
/// harness, which installs an audit plane on top before building).
pub fn kernel_config(setup: Setup) -> KernelConfig {
    KernelConfig {
        fs: setup.fs,
        cache: CacheConfig {
            mem_bytes: setup.mem_bytes,
            dirty_ratio: setup.dirty_ratio,
            dirty_background_ratio: setup.dirty_ratio / 2.0,
        },
        cores: setup.cores,
        pdflush: setup.sched.wants_pdflush(),
        gate_reads: setup.sched.gates_reads(),
        fs_seed: setup.seed,
        chaos: setup.chaos,
        queue: match setup.queue_depth {
            Some(d) => QueuePlane::Queued { depth: d },
            None => QueuePlane::Serial,
        },
        ..Default::default()
    }
}

/// Build a world with a single kernel per the setup.
pub fn build_world(setup: Setup) -> (World, KernelId) {
    build_world_with(setup, setup.sched.build())
}

/// Build a world per the setup but install an explicit scheduler
/// instance — custom layer trees, single-layer wrappers, shims. The
/// kernel flags (pdflush, read gating) still follow `setup.sched`, so a
/// wrapper around scheduler S runs under exactly S's kernel config.
pub fn build_world_with(setup: Setup, sched: Box<dyn IoSched>) -> (World, KernelId) {
    let mut w = World::new();
    let k = w.add_kernel(kernel_config(setup), setup.device.build(), sched);
    (w, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_fs::FileSystem as _;

    #[test]
    fn builders_compose() {
        let s = Setup::new(SchedChoice::SplitToken)
            .on_ssd()
            .on_xfs()
            .mem(64 * 1024 * 1024)
            .cores(32)
            .dirty_ratio(0.5);
        assert_eq!(s.device, DeviceChoice::Ssd);
        assert_eq!(s.fs, FsChoice::Xfs);
        assert_eq!(s.cores, 32);
        let (w, k) = build_world(s);
        assert_eq!(w.kernel(k).fs().name(), "xfs");
        assert_eq!(w.kernel(k).sched().name(), "split-token");
    }

    #[test]
    fn scs_gates_reads_and_split_deadline_owns_writeback() {
        assert!(SchedChoice::ScsToken.gates_reads());
        assert!(!SchedChoice::SplitToken.gates_reads());
        assert!(!SchedChoice::SplitDeadline.wants_pdflush());
        assert!(SchedChoice::SplitPdflush.wants_pdflush());
    }
}
