//! Figure 5 — I/O Latency Dependencies under Block-Deadline.
//!
//! Thread A appends one 4 KB block and fsyncs; thread B writes N random
//! blocks and fsyncs. Even with 20 ms block deadlines, A's fsync latency
//! grows with B's flush size: B's data is ordered under the same journal
//! transaction, so A's tiny fsync waits for B's entire flush.

use sim_core::{SimDuration, SimTime};
use sim_workloads::{BatchRandFsyncer, FsyncAppender};

use crate::setup::{build_world, SchedChoice, Setup};
use crate::table::{ms, Table};
use crate::{GB, KB};

/// Configuration.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Simulated run time per point.
    pub duration: SimDuration,
    /// B's flush sizes, in 4 KB blocks (the paper sweeps 16 KB..4 MB).
    pub b_blocks: [u64; 5],
    /// Block deadline applied to both threads.
    pub deadline: SimDuration,
    /// File B scribbles into.
    pub b_file: u64,
    /// Experiment seed (0 = historical run).
    pub seed: u64,
}

impl Config {
    /// Small run for tests.
    pub fn quick() -> Self {
        Config {
            duration: SimDuration::from_secs(10),
            b_blocks: [4, 16, 64, 256, 1024],
            deadline: SimDuration::from_millis(20),
            b_file: GB,
            seed: 0,
        }
    }

    /// Paper-scale run.
    pub fn paper() -> Self {
        Config {
            duration: SimDuration::from_secs(30),
            ..Self::quick()
        }
    }
}

/// One point of the sweep.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    /// B's flush size in bytes.
    pub b_bytes: u64,
    /// A's mean fsync latency (ms).
    pub a_mean_ms: f64,
    /// A's 95th-percentile fsync latency (ms).
    pub a_p95_ms: f64,
    /// Number of fsyncs A completed.
    pub a_count: usize,
}

/// Full sweep result.
#[derive(Debug, Clone)]
pub struct FigResult {
    /// One point per B size.
    pub points: Vec<Point>,
}

/// Run one point of the sweep with the given scheduler.
pub fn run_point(cfg: &Config, nblocks: u64, sched: SchedChoice) -> Point {
    let (mut w, k) = build_world(Setup::new(sched).seed(cfg.seed));
    let a_file = w.prealloc_file(k, 64 * crate::MB, true);
    let b_file = w.prealloc_file(k, cfg.b_file, true);
    let a = w.spawn(
        k,
        Box::new(FsyncAppender::new(
            a_file,
            4 * KB,
            SimDuration::from_millis(5),
        )),
    );
    let _b = w.spawn(
        k,
        Box::new(BatchRandFsyncer::new(
            b_file,
            cfg.b_file,
            nblocks,
            SimDuration::from_millis(50),
            cfg.seed ^ 0x5ee,
        )),
    );
    // The paper sets per-process block deadlines (their Block-Deadline
    // extension): apply to both threads' block writes.
    for pid in [a, _b] {
        w.configure(k, pid, split_core::SchedAttr::WriteDeadline(cfg.deadline));
    }
    w.run_for(cfg.duration);
    let st = w.kernel(k).stats.proc(a).expect("A ran");
    // Skip the first second (warm-up: journal cold, queues empty).
    let lat_ms: Vec<f64> = st
        .fsyncs
        .iter()
        .filter(|(t, _)| *t > SimTime::ZERO + SimDuration::from_secs(1))
        .map(|(_, d)| d.as_millis_f64())
        .collect();
    Point {
        b_bytes: nblocks * 4 * KB,
        a_mean_ms: sim_core::stats::mean(&lat_ms),
        a_p95_ms: sim_core::stats::percentile(&lat_ms, 95.0),
        a_count: lat_ms.len(),
    }
}

/// Run the full sweep under Block-Deadline.
pub fn run(cfg: &Config) -> FigResult {
    let points = cfg
        .b_blocks
        .iter()
        .map(|&n| run_point(cfg, n, SchedChoice::BlockDeadlineWith(20, 20)))
        .collect();
    FigResult { points }
}

impl std::fmt::Display for FigResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Figure 5 — A's fsync latency vs B's flush size (Block-Deadline, 20 ms deadlines)"
        )?;
        let mut t = Table::new(["B flush", "A mean fsync", "A p95 fsync", "A fsyncs"]);
        for p in &self.points {
            t.row([
                format!("{} KB", p.b_bytes / KB),
                ms(p.a_mean_ms),
                ms(p.a_p95_ms),
                p.a_count.to_string(),
            ]);
        }
        write!(f, "{}", t.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_latency_grows_with_b_flush_size() {
        let cfg = Config::quick();
        let small = run_point(
            &cfg,
            cfg.b_blocks[0],
            SchedChoice::BlockDeadlineWith(20, 20),
        );
        let large = run_point(
            &cfg,
            *cfg.b_blocks.last().unwrap(),
            SchedChoice::BlockDeadlineWith(20, 20),
        );
        assert!(small.a_count > 5, "A must make progress: {small:?}");
        assert!(large.a_count > 1, "A must make progress: {large:?}");
        assert!(
            large.a_mean_ms > 3.0 * small.a_mean_ms,
            "A's fsync latency must scale with B's flush: {} vs {} ms",
            large.a_mean_ms,
            small.a_mean_ms
        );
    }
}
