//! Figure 12 (and Table 3) — fsync latency isolation.
//!
//! Thread A appends 4 KB and fsyncs (database log); thread B writes 1024
//! random blocks and fsyncs (checkpoint), starting after a warm-up. Under
//! Block-Deadline, A's fsyncs blow up by an order of magnitude while B is
//! active; under Split-Deadline, A stays near its deadline because B's
//! expensive fsync is held at the syscall gate and its data is drained by
//! asynchronous writeback.

use sim_core::{SimDuration, SimTime};
use sim_kernel::{ProcAction, ProcessLogic};
use sim_workloads::{BatchRandFsyncer, FsyncAppender};
use split_core::SchedAttr;

use crate::setup::{build_world, DeviceChoice, SchedChoice, Setup};
use crate::table::{ms, Table};
use crate::{GB, KB};

/// Deadline settings (Table 3): `(A, B)` per level.
#[derive(Debug, Clone, Copy)]
pub struct Deadlines {
    /// Block-write deadline for Block-Deadline runs.
    pub block_write: SimDuration,
    /// A's fsync deadline for Split-Deadline runs.
    pub a_fsync: SimDuration,
    /// B's fsync deadline for Split-Deadline runs.
    pub b_fsync: SimDuration,
}

/// Configuration.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Simulated run time.
    pub duration: SimDuration,
    /// When B starts issuing its big fsyncs.
    pub b_start: SimDuration,
    /// Blocks per B batch (the paper uses 1024 = 4 MB).
    pub b_blocks: u64,
    /// Device.
    pub device: DeviceChoice,
    /// Deadlines (Table 3).
    pub deadlines: Deadlines,
    /// Experiment seed (0 = historical run).
    pub seed: u64,
}

impl Config {
    /// HDD run (quick).
    pub fn quick_hdd() -> Self {
        Config {
            duration: SimDuration::from_secs(20),
            b_start: SimDuration::from_secs(5),
            b_blocks: 1024,
            device: DeviceChoice::Hdd,
            deadlines: Deadlines {
                block_write: SimDuration::from_millis(20),
                a_fsync: SimDuration::from_millis(100),
                b_fsync: SimDuration::from_millis(400),
            },
            seed: 0,
        }
    }

    /// SSD run (quick).
    pub fn quick_ssd() -> Self {
        Config {
            device: DeviceChoice::Ssd,
            deadlines: Deadlines {
                block_write: SimDuration::from_millis(5),
                a_fsync: SimDuration::from_millis(20),
                b_fsync: SimDuration::from_millis(100),
            },
            ..Self::quick_hdd()
        }
    }

    /// Paper-scale HDD run.
    pub fn paper_hdd() -> Self {
        Config {
            duration: SimDuration::from_secs(60),
            ..Self::quick_hdd()
        }
    }
}

/// A delayed-start wrapper so B begins after the warm-up window.
struct DelayedStart<L> {
    start: SimTime,
    started: bool,
    inner: L,
}

impl<L: ProcessLogic> ProcessLogic for DelayedStart<L> {
    fn next(&mut self, now: SimTime, last: &sim_kernel::Outcome) -> ProcAction {
        if !self.started {
            self.started = true;
            return ProcAction::Sleep(self.start.since(now));
        }
        self.inner.next(now, last)
    }
}

/// One scheduler's outcome.
#[derive(Debug, Clone)]
pub struct Series {
    /// Scheduler name.
    pub sched: &'static str,
    /// A's (time, latency-ms) points.
    pub a_latencies: Vec<(f64, f64)>,
    /// A's mean fsync latency before B starts (ms).
    pub a_before_ms: f64,
    /// A's p95 fsync latency while B is active (ms).
    pub a_during_p95_ms: f64,
    /// B's fsyncs completed.
    pub b_fsyncs: usize,
}

/// Full figure result.
#[derive(Debug, Clone)]
pub struct FigResult {
    /// Block-Deadline baseline.
    pub block: Series,
    /// Split-Deadline.
    pub split: Series,
    /// Config used.
    pub cfg: Config,
}

fn run_one(cfg: &Config, sched: SchedChoice) -> Series {
    run_one_inner(cfg, sched, false).0
}

fn run_one_inner(cfg: &Config, sched: SchedChoice, trace: bool) -> (Series, Option<String>) {
    let setup = Setup {
        device: cfg.device,
        seed: cfg.seed,
        ..Setup::new(sched)
    };
    let (mut w, k) = build_world(setup);
    if trace {
        w.enable_tracing(k);
    }
    let a_file = w.prealloc_file(k, 256 * crate::MB, true);
    let b_file = w.prealloc_file(k, GB, true);
    let a = w.spawn(
        k,
        Box::new(FsyncAppender::new(
            a_file,
            4 * KB,
            SimDuration::from_millis(20),
        )),
    );
    let b = w.spawn(
        k,
        Box::new(DelayedStart {
            start: SimTime::ZERO + cfg.b_start,
            started: false,
            inner: BatchRandFsyncer::new(
                b_file,
                GB,
                cfg.b_blocks,
                SimDuration::from_millis(100),
                cfg.seed ^ 0xb12,
            ),
        }),
    );
    match sched {
        SchedChoice::SplitDeadline => {
            w.configure(k, a, SchedAttr::FsyncDeadline(cfg.deadlines.a_fsync));
            w.configure(k, b, SchedAttr::FsyncDeadline(cfg.deadlines.b_fsync));
        }
        _ => {
            for pid in [a, b] {
                w.configure(k, pid, SchedAttr::WriteDeadline(cfg.deadlines.block_write));
            }
        }
    }
    w.run_for(cfg.duration);
    let stats = &w.kernel(k).stats;
    let a_st = stats.proc(a).expect("A ran");
    let b_st = stats.proc(b);
    let b_start_s = cfg.b_start.as_secs_f64();
    let a_latencies: Vec<(f64, f64)> = a_st
        .fsyncs
        .iter()
        .map(|(t, d)| (t.as_secs_f64(), d.as_millis_f64()))
        .collect();
    let before: Vec<f64> = a_latencies
        .iter()
        .filter(|(t, _)| *t > 1.0 && *t < b_start_s)
        .map(|(_, d)| *d)
        .collect();
    let during: Vec<f64> = a_latencies
        .iter()
        .filter(|(t, _)| *t > b_start_s + 1.0)
        .map(|(_, d)| *d)
        .collect();
    let during_pcts = sim_core::stats::Percentiles::new(during);
    let series = Series {
        sched: sched.name(),
        a_before_ms: sim_core::stats::mean(&before),
        a_during_p95_ms: during_pcts.p95(),
        a_latencies,
        b_fsyncs: b_st.map(|s| s.fsyncs.len()).unwrap_or(0),
    };
    let json = trace.then(|| w.tracer(k).chrome_json());
    (series, json)
}

/// Run the experiment on the configured device.
pub fn run(cfg: &Config) -> FigResult {
    FigResult {
        block: run_one(cfg, SchedChoice::BlockDeadlineWith(20, 20)),
        split: run_one(cfg, SchedChoice::SplitDeadline),
        cfg: *cfg,
    }
}

/// Like [`run`], but with span tracing on; also returns the Chrome
/// trace-event JSON for each scheduler's run (block, then split).
pub fn run_traced(cfg: &Config) -> (FigResult, [String; 2]) {
    let (block, bj) = run_one_inner(cfg, SchedChoice::BlockDeadlineWith(20, 20), true);
    let (split, sj) = run_one_inner(cfg, SchedChoice::SplitDeadline, true);
    (
        FigResult {
            block,
            split,
            cfg: *cfg,
        },
        [bj.expect("traced"), sj.expect("traced")],
    )
}

impl std::fmt::Display for FigResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Figure 12 — fsync latency isolation ({:?}, B: {} random blocks + fsync)",
            self.cfg.device, self.cfg.b_blocks
        )?;
        let mut t = Table::new(["scheduler", "A before B", "A p95 during B", "B fsyncs"]);
        for s in [&self.block, &self.split] {
            t.row([
                s.sched.to_string(),
                ms(s.a_before_ms),
                ms(s.a_during_p95_ms),
                s.b_fsyncs.to_string(),
            ]);
        }
        write!(f, "{}", t.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_deadline_isolates_a_on_hdd() {
        let r = run(&Config::quick_hdd());
        // Block-Deadline: A's tail latency explodes while B checkpoints.
        assert!(
            r.block.a_during_p95_ms > 4.0 * r.block.a_before_ms.max(1.0),
            "block-deadline should blow up: before {} p95-during {}",
            r.block.a_before_ms,
            r.block.a_during_p95_ms
        );
        // Split-Deadline: A's p95 stays in the vicinity of its deadline.
        let budget = r.cfg.deadlines.a_fsync.as_millis_f64();
        assert!(
            r.split.a_during_p95_ms < 2.5 * budget,
            "split-deadline p95 {} must stay near the {} ms goal",
            r.split.a_during_p95_ms,
            budget
        );
        // And it is much better than the baseline (the paper reports 4×).
        assert!(
            r.block.a_during_p95_ms > 2.0 * r.split.a_during_p95_ms,
            "split {} vs block {}",
            r.split.a_during_p95_ms,
            r.block.a_during_p95_ms
        );
        // B still makes progress under Split-Deadline.
        assert!(r.split.b_fsyncs >= 1, "B must not starve");
    }

    #[test]
    fn split_deadline_isolates_a_on_ssd() {
        let r = run(&Config::quick_ssd());
        assert!(
            r.block.a_during_p95_ms > 1.5 * r.split.a_during_p95_ms,
            "split {} vs block {} on SSD",
            r.split.a_during_p95_ms,
            r.block.a_during_p95_ms
        );
    }
}
