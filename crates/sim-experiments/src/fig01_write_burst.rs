//! Figure 1 — Write Burst.
//!
//! A normal process A reads sequentially from a large file; an
//! "idle-priority" process B issues a one-second burst of random writes.
//! Under CFQ, B's buffered burst is flushed by the writeback thread at
//! normal priority, so the idle class provides no protection and A's
//! throughput is degraded for a long time afterwards. Under Split-Token
//! with B throttled, the burst is charged to B the moment it dirties
//! buffers and B is held — A keeps its bandwidth.

use sim_block::IoPrio;
use sim_core::{SimDuration, SimTime};
use sim_workloads::{BurstWriter, SeqReader};
use split_core::{IoSched, SchedAttr};

use crate::setup::{build_world_with, SchedChoice, Setup};
use crate::table::{f1, Table};
use crate::{GB, KB, MB};

/// Configuration for the write-burst experiment.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Total simulated time.
    pub duration: SimDuration,
    /// When B's burst starts.
    pub burst_at: SimDuration,
    /// Burst length.
    pub burst_len: SimDuration,
    /// Size of the file A streams.
    pub a_file: u64,
    /// Size of the file B scribbles into.
    pub b_file: u64,
    /// Throughput-series bucket.
    pub bucket: SimDuration,
    /// Experiment seed (0 = historical run).
    pub seed: u64,
}

impl Config {
    /// Small run for tests.
    pub fn quick() -> Self {
        Config {
            duration: SimDuration::from_secs(30),
            burst_at: SimDuration::from_secs(5),
            burst_len: SimDuration::from_secs(1),
            a_file: 4 * GB,
            b_file: 16 * GB,
            bucket: SimDuration::from_secs(1),
            seed: 0,
        }
    }

    /// Longer run matching the paper's several-minute recovery window.
    pub fn paper() -> Self {
        Config {
            duration: SimDuration::from_secs(120),
            ..Self::quick()
        }
    }
}

/// One scheduler's outcome.
#[derive(Debug, Clone)]
pub struct Series {
    /// Scheduler name.
    pub sched: &'static str,
    /// A's throughput per bucket (MB/s).
    pub a_mbps: Vec<f64>,
    /// A's mean throughput before the burst.
    pub before: f64,
    /// A's mean throughput in the 10 s after the burst starts.
    pub after: f64,
    /// Buckets (after the burst) until A recovers to 80% of `before`;
    /// `None` if it never does within the run.
    pub recovery_buckets: Option<usize>,
}

/// Full experiment result.
#[derive(Debug, Clone)]
pub struct FigResult {
    /// CFQ with B in the idle class (the paper's Figure 1 line).
    pub cfq_idle: Series,
    /// Split-Token with B throttled to 1 MB/s.
    pub split_token: Series,
    /// Config used.
    pub cfg: Config,
}

fn run_one(cfg: &Config, sched: SchedChoice) -> Series {
    run_one_with(cfg, sched, None)
}

/// Build the write-burst world: A streaming reads, B a one-second burst,
/// B contained per the scheduler's mechanism. `queue_depth` of `None`
/// keeps the legacy serial device; `Some(d)` runs the queued plane
/// (shared with the fig01_qd sweep, the dispatch benchmarks, and the
/// zero-allocation steady-state audit).
pub fn build_burst_world(
    cfg: &Config,
    sched: SchedChoice,
    queue_depth: Option<u32>,
) -> (sim_kernel::World, sim_core::KernelId, sim_core::Pid) {
    build_burst_world_with(cfg, sched, sched.build(), queue_depth)
}

/// [`build_burst_world`] with an explicit scheduler instance. `base`
/// still drives the kernel flags (pdflush, read gating) and B's
/// containment attribute, while `instance` is what actually installs —
/// the bench harness passes CFQ wrapped in a single catch-all layer
/// here to price the layer plane's indirection against the flat run.
pub fn build_burst_world_with(
    cfg: &Config,
    base: SchedChoice,
    instance: Box<dyn IoSched>,
    queue_depth: Option<u32>,
) -> (sim_kernel::World, sim_core::KernelId, sim_core::Pid) {
    let mut setup = Setup::new(base).seed(cfg.seed);
    if let Some(d) = queue_depth {
        setup = setup.queue_depth(d);
    }
    let (mut w, k) = build_world_with(setup, instance);
    let a_file = w.prealloc_file(k, cfg.a_file, true);
    let b_file = w.prealloc_file(k, cfg.b_file, true);
    let a = w.spawn(k, Box::new(SeqReader::new(a_file, cfg.a_file, MB)));
    w.kernel_mut(k).track_read_ts(a, cfg.bucket);
    let b = w.spawn(
        k,
        Box::new(BurstWriter::new(
            b_file,
            cfg.b_file,
            4 * KB,
            SimTime::ZERO + cfg.burst_at,
            cfg.burst_len,
            cfg.seed ^ 0xb0b,
        )),
    );
    match base {
        SchedChoice::Cfq => w.set_ioprio(k, b, IoPrio::idle()),
        SchedChoice::SplitToken => w.configure(k, b, SchedAttr::TokenRate(MB)),
        _ => {}
    }
    (w, k, a)
}

/// [`run_one`] generalized over the device plane.
pub(crate) fn run_one_with(cfg: &Config, sched: SchedChoice, queue_depth: Option<u32>) -> Series {
    let (mut w, k, a) = build_burst_world(cfg, sched, queue_depth);
    w.run_for(cfg.duration);
    let a_mbps = w.kernel(k).stats.read_ts[&a].mbps();
    let burst_bucket = (cfg.burst_at.as_nanos() / cfg.bucket.as_nanos()) as usize;
    let before_slice = &a_mbps[..burst_bucket.max(1).min(a_mbps.len())];
    let before = sim_core::stats::mean(before_slice);
    let after_slice: Vec<f64> = a_mbps
        .iter()
        .copied()
        .skip(burst_bucket + 1)
        .take(10)
        .collect();
    let after = sim_core::stats::mean(&after_slice);
    let recovery_buckets = a_mbps
        .iter()
        .skip(burst_bucket + 1)
        .position(|&x| x >= 0.8 * before);
    Series {
        sched: sched.name(),
        a_mbps,
        before,
        after,
        recovery_buckets,
    }
}

/// Run the experiment.
pub fn run(cfg: &Config) -> FigResult {
    FigResult {
        cfq_idle: run_one(cfg, SchedChoice::Cfq),
        split_token: run_one(cfg, SchedChoice::SplitToken),
        cfg: *cfg,
    }
}

impl std::fmt::Display for FigResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Figure 1 — Write Burst (B bursts at t={}s for {}s)",
            self.cfg.burst_at.as_secs_f64(),
            self.cfg.burst_len.as_secs_f64()
        )?;
        let mut t = Table::new(["scheduler", "A before", "A after-burst", "recovered"]);
        for s in [&self.cfq_idle, &self.split_token] {
            t.row([
                s.sched.to_string(),
                format!("{} MB/s", f1(s.before)),
                format!("{} MB/s", f1(s.after)),
                match s.recovery_buckets {
                    Some(b) => format!("after {b} buckets"),
                    None => "not within run".to_string(),
                },
            ]);
        }
        write!(f, "{}", t.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfq_idle_class_cannot_contain_the_burst_but_split_token_can() {
        let r = run(&Config::quick());
        // A streams near device bandwidth before the burst in both runs.
        assert!(
            r.cfq_idle.before > 80.0,
            "cfq before: {}",
            r.cfq_idle.before
        );
        assert!(
            r.split_token.before > 80.0,
            "split before: {}",
            r.split_token.before
        );
        // Under CFQ the burst sharply degrades A for the whole drain (the
        // paper's collapse is deeper still — its device pipelines many
        // requests; ours serves one at a time, which softens the blow)...
        assert!(
            r.cfq_idle.after < 0.7 * r.cfq_idle.before,
            "cfq after-burst should degrade: {} vs {}",
            r.cfq_idle.after,
            r.cfq_idle.before
        );
        assert!(
            r.cfq_idle.recovery_buckets.is_none(),
            "A should not recover within the quick run: {:?}",
            r.cfq_idle.recovery_buckets
        );
        // ...under Split-Token, A barely notices.
        assert!(
            r.split_token.after > 0.8 * r.split_token.before,
            "split-token should protect A: {} vs {}",
            r.split_token.after,
            r.split_token.before
        );
    }
}
