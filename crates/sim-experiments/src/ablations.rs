//! Ablations: knock out one design choice at a time and show which paper
//! result it was carrying.
//!
//! * **No prompt charging** (block-level revision only): Split-Token
//!   degenerates to block-level accounting — a burst can pollute the
//!   write buffer for free before any charge lands (the Figure 1
//!   failure reappears).
//! * **No cause tags** (charge the submitter): delegated writeback is
//!   billed to the writeback thread, so the throttled process escapes its
//!   cap — CFQ's Figure 3 failure, reproduced inside Split-Token.
//! * **No syscall gate** (block hooks only): AFQ loses control over
//!   buffered writers and fairness collapses to the dirty-queue FIFO.
//!
//! Each ablation reuses a production scheduler with one switch flipped,
//! so the deltas are attributable to exactly one mechanism.

use sim_block::{Dispatch, Request};
use sim_core::{Pid, SimDuration, SimTime};
use sim_workloads::{BurstWriter, RandWriter, SeqReader, SeqWriter};
use split_core::{BufferDirtied, BufferFreed, Gate, IoSched, SchedAttr, SchedCtx, SyscallInfo};
use split_schedulers::{Afq, SplitToken};

use crate::setup::{SchedChoice, Setup};
use crate::{GB, KB, MB};

/// Wraps a scheduler, selectively disabling hooks.
pub struct Lobotomized<S> {
    inner: S,
    /// Forward the memory-level hooks?
    pub memory_hooks: bool,
    /// Forward the syscall gate?
    pub syscall_gate: bool,
    /// Strip cause tags from block requests (submitter-only accounting)?
    pub strip_causes: bool,
}

impl<S: IoSched> Lobotomized<S> {
    /// Full scheduler with switches to turn parts off.
    pub fn new(inner: S) -> Self {
        Lobotomized {
            inner,
            memory_hooks: true,
            syscall_gate: true,
            strip_causes: false,
        }
    }

    /// Disable the memory-level (buffer) hooks.
    pub fn without_memory_hooks(mut self) -> Self {
        self.memory_hooks = false;
        self
    }

    /// Disable the syscall-entry gate.
    pub fn without_syscall_gate(mut self) -> Self {
        self.syscall_gate = false;
        self
    }

    /// Replace each request's cause set with its submitter.
    pub fn without_cause_tags(mut self) -> Self {
        self.strip_causes = true;
        self
    }
}

impl<S: IoSched> IoSched for Lobotomized<S> {
    fn name(&self) -> &'static str {
        "lobotomized"
    }

    fn configure(&mut self, pid: Pid, attr: SchedAttr) {
        self.inner.configure(pid, attr);
    }

    fn syscall_enter(&mut self, sc: &SyscallInfo, ctx: &mut SchedCtx<'_>) -> Gate {
        if self.syscall_gate {
            self.inner.syscall_enter(sc, ctx)
        } else {
            Gate::Proceed
        }
    }

    fn syscall_exit(&mut self, sc: &SyscallInfo, ctx: &mut SchedCtx<'_>) {
        self.inner.syscall_exit(sc, ctx);
    }

    fn buffer_dirtied(&mut self, ev: &BufferDirtied, ctx: &mut SchedCtx<'_>) {
        if self.memory_hooks {
            self.inner.buffer_dirtied(ev, ctx);
        }
    }

    fn buffer_freed(&mut self, ev: &BufferFreed, ctx: &mut SchedCtx<'_>) {
        if self.memory_hooks {
            self.inner.buffer_freed(ev, ctx);
        }
    }

    fn block_add(&mut self, mut req: Request, ctx: &mut SchedCtx<'_>) {
        if self.strip_causes {
            req.causes = sim_core::CauseSet::of(req.submitter);
        }
        self.inner.block_add(req, ctx);
    }

    fn block_dispatch(&mut self, ctx: &mut SchedCtx<'_>) -> Dispatch {
        self.inner.block_dispatch(ctx)
    }

    fn block_completed(&mut self, req: &Request, ctx: &mut SchedCtx<'_>) {
        self.inner.block_completed(req, ctx);
    }

    fn timer_fired(&mut self, ctx: &mut SchedCtx<'_>) {
        self.inner.timer_fired(ctx);
    }

    fn pick_dirty_waiter(&mut self, waiters: &[Pid]) -> usize {
        if self.syscall_gate {
            self.inner.pick_dirty_waiter(waiters)
        } else {
            0
        }
    }

    fn queued(&self) -> usize {
        self.inner.queued()
    }
}

/// Outcome of the burst ablation.
#[derive(Debug, Clone, Copy)]
pub struct BurstAblation {
    /// A's throughput in the 10 s after the burst, full Split-Token.
    pub full_after: f64,
    /// Same, with memory hooks (prompt charging) disabled.
    pub no_prompt_after: f64,
    /// A's throughput before the burst (baseline).
    pub before: f64,
}

/// Figure-1 scenario with and without prompt (memory-level) charging.
/// `seed` varies the burst's write pattern (0 = historical run).
pub fn burst_ablation(duration: SimDuration, seed: u64) -> BurstAblation {
    let run = |prompt: bool| {
        let mut world = sim_kernel::World::new();
        let sched: Box<dyn IoSched> = if prompt {
            Box::new(Lobotomized::new(SplitToken::new()))
        } else {
            Box::new(Lobotomized::new(SplitToken::new()).without_memory_hooks())
        };
        let k = world.add_kernel(
            sim_kernel::KernelConfig {
                cache: sim_cache::CacheConfig {
                    mem_bytes: 512 * MB,
                    ..Default::default()
                },
                fs_seed: seed,
                ..Default::default()
            },
            sim_kernel::DeviceKind::hdd(),
            sched,
        );
        let a_file = world.prealloc_file(k, 4 * GB, true);
        let b_file = world.prealloc_file(k, 16 * GB, true);
        let a = world.spawn(k, Box::new(SeqReader::new(a_file, 4 * GB, MB)));
        world
            .kernel_mut(k)
            .track_read_ts(a, SimDuration::from_secs(1));
        let b = world.spawn(
            k,
            Box::new(BurstWriter::new(
                b_file,
                16 * GB,
                4 * KB,
                SimTime::ZERO + SimDuration::from_secs(5),
                SimDuration::from_secs(1),
                seed ^ 0xab1,
            )),
        );
        world.configure(k, b, SchedAttr::TokenRate(MB));
        world.run_for(duration);
        let mbps = world.kernel(k).stats.read_ts[&a].mbps();
        let before = sim_core::stats::mean(&mbps[..5.min(mbps.len())]);
        let after: Vec<f64> = mbps.iter().copied().skip(6).take(10).collect();
        (before, sim_core::stats::mean(&after))
    };
    let (before, full_after) = run(true);
    let (_, no_prompt_after) = run(false);
    BurstAblation {
        full_after,
        no_prompt_after,
        before,
    }
}

/// Outcome of the cause-tag ablation.
#[derive(Debug, Clone, Copy)]
pub struct TagAblation {
    /// Throttled B's buffered write throughput with cause tags (MB/s).
    pub with_tags_b: f64,
    /// Same with tags stripped (submitter accounting).
    pub without_tags_b: f64,
}

/// A throttled buffered writer with and without cause tags: without them,
/// delegated writeback bills the writeback thread and B escapes its cap.
/// `seed` varies B's write pattern (0 = historical run).
pub fn tag_ablation(duration: SimDuration, seed: u64) -> TagAblation {
    let run = |tags: bool| {
        let mut world = sim_kernel::World::new();
        let sched: Box<dyn IoSched> = if tags {
            Box::new(Lobotomized::new(SplitToken::new()).without_memory_hooks())
        } else {
            Box::new(
                Lobotomized::new(SplitToken::new())
                    .without_memory_hooks()
                    .without_cause_tags(),
            )
        };
        let (mut w, k) = {
            let k = world.add_kernel(
                sim_kernel::KernelConfig {
                    fs_seed: seed,
                    ..Default::default()
                },
                sim_kernel::DeviceKind::hdd(),
                sched,
            );
            (world, k)
        };
        let b_file = w.prealloc_file(k, 2 * GB, false);
        let b = w.spawn(
            k,
            Box::new(RandWriter::new(b_file, 2 * GB, 4 * KB, seed ^ 0xab2)),
        );
        w.configure(k, b, SchedAttr::TokenRate(MB));
        w.run_for(duration);
        w.kernel(k).stats.write_mbps(b, duration)
    };
    TagAblation {
        with_tags_b: run(true),
        without_tags_b: run(false),
    }
}

/// Outcome of the gate ablation.
#[derive(Debug, Clone, Copy)]
pub struct GateAblation {
    /// High/low priority share ratio with the syscall gate.
    pub with_gate_ratio: f64,
    /// Same without the gate.
    pub without_gate_ratio: f64,
}

/// AFQ's async-write fairness with and without the syscall-level gate.
/// `seed` varies file-system layout (0 = historical run).
pub fn gate_ablation(duration: SimDuration, seed: u64) -> GateAblation {
    let run = |gate: bool| {
        let sched: Box<dyn IoSched> = if gate {
            Box::new(Lobotomized::new(Afq::new()))
        } else {
            Box::new(Lobotomized::new(Afq::new()).without_syscall_gate())
        };
        let (mut w, k) = {
            let mut world = sim_kernel::World::new();
            let setup = Setup::new(SchedChoice::Afq);
            let k = world.add_kernel(
                sim_kernel::KernelConfig {
                    cache: sim_cache::CacheConfig {
                        mem_bytes: setup.mem_bytes,
                        ..Default::default()
                    },
                    fs_seed: seed,
                    ..Default::default()
                },
                sim_kernel::DeviceKind::hdd(),
                sched,
            );
            (world, k)
        };
        let mut hi = Pid(0);
        let mut lo = Pid(0);
        for level in [0u8, 7] {
            let f = w.prealloc_file(k, 2 * GB, true);
            let pid = w.spawn(k, Box::new(SeqWriter::new(f, 2 * GB, MB)));
            w.set_ioprio(k, pid, sim_block::IoPrio::best_effort(level));
            if level == 0 {
                hi = pid;
            } else {
                lo = pid;
            }
        }
        w.run_for(duration);
        let stats = &w.kernel(k).stats;
        stats.write_mbps(hi, duration) / stats.write_mbps(lo, duration).max(0.001)
    };
    GateAblation {
        with_gate_ratio: run(true),
        without_gate_ratio: run(false),
    }
}

impl std::fmt::Display for BurstAblation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Ablation — prompt (memory-level) charging, Figure-1 burst"
        )?;
        writeln!(f, "  A before burst:              {:6.1} MB/s", self.before)?;
        writeln!(
            f,
            "  A after, full Split-Token:   {:6.1} MB/s",
            self.full_after
        )?;
        writeln!(
            f,
            "  A after, no prompt charging: {:6.1} MB/s",
            self.no_prompt_after
        )
    }
}

impl std::fmt::Display for TagAblation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Ablation — cause tags (1 MB/s cap on a buffered random writer)"
        )?;
        writeln!(
            f,
            "  B with tags (block-level accounting): {:6.1} MB/s",
            self.with_tags_b
        )?;
        writeln!(
            f,
            "  B with tags stripped (submitter):     {:6.1} MB/s",
            self.without_tags_b
        )
    }
}

impl std::fmt::Display for GateAblation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Ablation — the syscall gate (AFQ, prio 0 vs prio 7 writers)"
        )?;
        writeln!(
            f,
            "  hi/lo share ratio with the gate:    {:5.2}",
            self.with_gate_ratio
        )?;
        writeln!(
            f,
            "  hi/lo share ratio without the gate: {:5.2}",
            self.without_gate_ratio
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prompt_charging_is_what_contains_the_burst() {
        let r = burst_ablation(SimDuration::from_secs(20), 0);
        assert!(
            r.full_after > 0.8 * r.before,
            "full Split-Token protects A: {} vs {}",
            r.full_after,
            r.before
        );
        assert!(
            r.no_prompt_after < 0.75 * r.full_after,
            "without prompt charging the burst pollutes: {} vs {}",
            r.no_prompt_after,
            r.full_after
        );
    }

    #[test]
    fn cause_tags_are_what_keep_the_throttle_honest() {
        // Block-level-only accounting is *late* (buffered writes run ahead
        // of their charges), so even with tags B's buffered rate exceeds
        // its 1 MB/s cap over a short window — but without tags the
        // delegated writeback bills the writeback thread and B escapes
        // the throttle entirely.
        let r = tag_ablation(SimDuration::from_secs(20), 0);
        assert!(
            r.without_tags_b > 2.0 * r.with_tags_b.max(0.05),
            "without tags, delegated writeback lets B escape: {} vs {}",
            r.without_tags_b,
            r.with_tags_b
        );
    }

    #[test]
    fn the_syscall_gate_is_what_orders_buffered_writers() {
        let r = gate_ablation(SimDuration::from_secs(15), 0);
        assert!(
            r.with_gate_ratio > 3.0,
            "with the gate, prio 0 ≫ prio 7: {}",
            r.with_gate_ratio
        );
        assert!(
            r.without_gate_ratio < 0.6 * r.with_gate_ratio,
            "without it, fairness collapses: {} vs {}",
            r.without_gate_ratio,
            r.with_gate_ratio
        );
    }
}
