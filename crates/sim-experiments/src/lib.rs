#![warn(missing_docs)]
//! Experiment harness: one module per table/figure of the paper's
//! evaluation. Every module exposes a `Config` (with `quick()` for tests
//! and `paper()` for full runs), a `run(&Config) -> …Result` function, and
//! a `Display` impl that prints the same rows/series the paper plots.
//!
//! The absolute numbers differ from the paper's 2015 testbed — the
//! substrate here is a simulator — but the *shapes* (who wins, by what
//! factor, where crossovers fall) are the reproduction target; see
//! EXPERIMENTS.md for the figure-by-figure comparison.

pub mod ablations;
pub mod breakdown;
pub mod fault_sweep;
pub mod fig01_qd;
pub mod fig01_write_burst;
pub mod fig03_cfq_async_unfair;
pub mod fig05_latency_dependency;
pub mod fig06_scs_isolation;
pub mod fig09_time_overhead;
pub mod fig10_space_overhead;
pub mod fig11_afq;
pub mod fig12_fsync_isolation;
pub mod fig14_token_comparison;
pub mod fig15_thread_scaling;
pub mod fig17_metadata;
pub mod fig18_sqlite;
pub mod fig19_postgres;
pub mod fig20_qemu;
pub mod fig21_hdfs;
pub mod fig_cluster;
pub mod fig_layers;
pub mod registry;
pub mod setup;
pub mod table;

pub use setup::{
    build_layered, build_world, build_world_with, default_layer_tree, kernel_config,
    resolve_layer_child, DeviceChoice, SchedChoice, Setup,
};

/// Re-exported units for experiment configs.
pub const KB: u64 = 1024;
/// One mebibyte.
pub const MB: u64 = 1024 * 1024;
/// One gibibyte.
pub const GB: u64 = 1024 * 1024 * 1024;
