//! `runner breakdown` — where does an fsync's latency go?
//!
//! Runs the Figure 12 contention workload (A: small log appends +
//! fsync; B: large random checkpoints + fsync) with span tracing on,
//! then decomposes every completed fsync into per-layer components
//! using the span tree (see [`sim_trace::breakdown`]). This is the
//! paper's Figure 5 dependency argument as a table: under a
//! block-level scheduler most of A's fsync time is data flushing and
//! journal entanglement it did not cause; Split-Deadline moves that
//! work out of the foreground path.
//!
//! The components tile each fsync's `[enter, complete]` interval by
//! construction, so the table always sums to the end-to-end latency.

use sim_core::{SimDuration, SimTime};
use sim_kernel::{Outcome, ProcAction, ProcessLogic};
use sim_trace::breakdown::{FSYNC_COMPONENTS, FSYNC_COMPONENT_LAYERS};
use sim_trace::{fsync_breakdown, layer_totals, FsyncBreakdown, Layer};
use sim_workloads::{BatchRandFsyncer, FsyncAppender};
use split_core::SchedAttr;

use crate::setup::{build_world, DeviceChoice, SchedChoice, Setup};
use crate::table::Table;
use crate::{GB, KB, MB};

/// Configuration.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Simulated run time.
    pub duration: SimDuration,
    /// When B's checkpoints start.
    pub b_start: SimDuration,
    /// Blocks per B batch.
    pub b_blocks: u64,
    /// Device.
    pub device: DeviceChoice,
    /// Experiment seed (0 = historical run).
    pub seed: u64,
}

impl Config {
    /// Quick profile (seconds of simulated time).
    pub fn quick() -> Self {
        Config {
            duration: SimDuration::from_secs(20),
            b_start: SimDuration::from_secs(5),
            b_blocks: 1024,
            device: DeviceChoice::Hdd,
            seed: 0,
        }
    }

    /// Paper-scale profile.
    pub fn paper() -> Self {
        Config {
            duration: SimDuration::from_secs(60),
            ..Self::quick()
        }
    }
}

/// A delayed-start wrapper (same as fig12's).
struct DelayedStart<L> {
    start: SimTime,
    started: bool,
    inner: L,
}

impl<L: ProcessLogic> ProcessLogic for DelayedStart<L> {
    fn next(&mut self, now: SimTime, last: &Outcome) -> ProcAction {
        if !self.started {
            self.started = true;
            return ProcAction::Sleep(self.start.since(now));
        }
        self.inner.next(now, last)
    }
}

/// One scheduler's decomposition.
#[derive(Debug, Clone)]
pub struct SchedBreakdown {
    /// Scheduler name.
    pub sched: &'static str,
    /// Aggregated fsync decomposition (all fsyncs, A and B).
    pub fsync: FsyncBreakdown,
    /// Total closed-span time per layer (activity profile).
    pub layers: [(Layer, f64); 7],
}

/// Full result: one decomposition per scheduler.
#[derive(Debug, Clone)]
pub struct BreakdownResult {
    /// Per-scheduler rows.
    pub rows: Vec<SchedBreakdown>,
    /// Config used.
    pub cfg: Config,
}

fn run_one(cfg: &Config, sched: SchedChoice) -> SchedBreakdown {
    let setup = Setup {
        device: cfg.device,
        seed: cfg.seed,
        ..Setup::new(sched)
    };
    let (mut w, k) = build_world(setup);
    w.enable_tracing(k);
    let a_file = w.prealloc_file(k, 256 * MB, true);
    let b_file = w.prealloc_file(k, GB, true);
    let a = w.spawn(
        k,
        Box::new(FsyncAppender::new(
            a_file,
            4 * KB,
            SimDuration::from_millis(20),
        )),
    );
    let b = w.spawn(
        k,
        Box::new(DelayedStart {
            start: SimTime::ZERO + cfg.b_start,
            started: false,
            inner: BatchRandFsyncer::new(
                b_file,
                GB,
                cfg.b_blocks,
                SimDuration::from_millis(100),
                cfg.seed ^ 0xb12,
            ),
        }),
    );
    match sched {
        SchedChoice::SplitDeadline => {
            w.configure(
                k,
                a,
                SchedAttr::FsyncDeadline(SimDuration::from_millis(100)),
            );
            w.configure(
                k,
                b,
                SchedAttr::FsyncDeadline(SimDuration::from_millis(400)),
            );
        }
        _ => {
            for pid in [a, b] {
                w.configure(
                    k,
                    pid,
                    SchedAttr::WriteDeadline(SimDuration::from_millis(20)),
                );
            }
        }
    }
    w.run_for(cfg.duration);
    let spans = w.tracer(k).spans();
    SchedBreakdown {
        sched: sched.name(),
        fsync: fsync_breakdown(&spans),
        layers: layer_totals(&spans),
    }
}

/// Run the decomposition under Block-Deadline and Split-Deadline.
pub fn run(cfg: &Config) -> BreakdownResult {
    BreakdownResult {
        rows: vec![
            run_one(cfg, SchedChoice::BlockDeadlineWith(20, 20)),
            run_one(cfg, SchedChoice::SplitDeadline),
        ],
        cfg: *cfg,
    }
}

impl std::fmt::Display for BreakdownResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "fsync latency breakdown ({:?}, B: {} random blocks + fsync)",
            self.cfg.device, self.cfg.b_blocks
        )?;
        for row in &self.rows {
            writeln!(
                f,
                "\n{} — {} fsyncs, mean {:.2} ms end-to-end:",
                row.sched,
                row.fsync.count,
                row.fsync.mean_ms()
            )?;
            let mut t = Table::new(["component", "layer", "total ms", "mean ms", "share"]);
            let total = row.fsync.total_ms.max(f64::MIN_POSITIVE);
            let n = row.fsync.count.max(1) as f64;
            for (i, name) in FSYNC_COMPONENTS.iter().enumerate() {
                let ms = row.fsync.components[i];
                t.row([
                    name.to_string(),
                    FSYNC_COMPONENT_LAYERS[i].name().to_string(),
                    format!("{ms:.2}"),
                    format!("{:.3}", ms / n),
                    format!("{:.1}%", 100.0 * ms / total),
                ]);
            }
            t.row([
                "= end-to-end".to_string(),
                String::new(),
                format!("{:.2}", row.fsync.components_sum_ms()),
                format!("{:.3}", row.fsync.mean_ms()),
                "100.0%".to_string(),
            ]);
            write!(f, "{}", t.render())?;
            writeln!(f, "\nper-layer span activity (overlapping, ms):")?;
            let mut lt = Table::new(["layer", "total ms"]);
            for (layer, ms) in row.layers {
                lt.row([layer.name().to_string(), format!("{ms:.2}")]);
            }
            write!(f, "{}", lt.render())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn components_sum_to_end_to_end() {
        let mut cfg = Config::quick();
        cfg.duration = SimDuration::from_secs(8);
        let r = run(&cfg);
        for row in &r.rows {
            assert!(row.fsync.count > 0, "{}: no fsyncs decomposed", row.sched);
            let sum = row.fsync.components_sum_ms();
            let total = row.fsync.total_ms;
            assert!(
                (sum - total).abs() <= 0.05 * total,
                "{}: components {sum} vs end-to-end {total}",
                row.sched
            );
        }
    }
}
