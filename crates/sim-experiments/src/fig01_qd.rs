//! Figure 1 (queue-depth sweep) — the write burst against a queued
//! device.
//!
//! The paper's Figure 1 was measured on a real disk whose NCQ queue the
//! burst could fill: once B's writeback requests occupy the device's
//! slots, A's read loses the firmware's shortest-positioning-time race
//! to a nearest-neighbour tour of scattered writes, and throughput
//! collapses rather than merely halving. This sweep replays the same
//! workload at hardware queue depths 1→32 on the queued-device plane:
//! CFQ-with-idle-B degrades monotonically deeper as the queue gives the
//! burst more slots to pollute, while Split-Token — which charges the
//! burst at dirty time and holds B — keeps A flat at every depth.
//!
//! Depth 1 reproduces the legacy serial-device numbers exactly, tying
//! this figure back to the original `fig01` table.

use crate::fig01_write_burst::{self, Series};
use crate::setup::SchedChoice;
use crate::table::{f1, Table};

/// Queue depths the sweep visits.
pub const DEPTHS: [u32; 6] = [1, 2, 4, 8, 16, 32];

/// Configuration: the underlying write-burst scenario.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// The fig01 workload parameters shared by every depth.
    pub burst: fig01_write_burst::Config,
}

impl Config {
    /// Small run for tests.
    pub fn quick() -> Self {
        Config {
            burst: fig01_write_burst::Config::quick(),
        }
    }

    /// Longer run matching the paper's recovery window.
    pub fn paper() -> Self {
        Config {
            burst: fig01_write_burst::Config::paper(),
        }
    }
}

/// Both schedulers' outcomes at one queue depth.
#[derive(Debug, Clone)]
pub struct DepthRow {
    /// Hardware queue depth.
    pub depth: u32,
    /// CFQ with B in the idle class.
    pub cfq: Series,
    /// Split-Token with B throttled to 1 MB/s.
    pub split: Series,
}

impl DepthRow {
    /// CFQ's throughput-loss factor: A's pre-burst rate over its
    /// after-burst rate (1.0 = unharmed; the paper's collapse is ≫ 4).
    pub fn cfq_degradation(&self) -> f64 {
        if self.cfq.after <= 0.0 {
            f64::INFINITY
        } else {
            self.cfq.before / self.cfq.after
        }
    }
}

/// Full sweep result.
#[derive(Debug, Clone)]
pub struct FigResult {
    /// One row per depth, in [`DEPTHS`] order.
    pub rows: Vec<DepthRow>,
    /// Config used.
    pub cfg: Config,
}

/// Run the sweep.
pub fn run(cfg: &Config) -> FigResult {
    let rows = DEPTHS
        .iter()
        .map(|&depth| DepthRow {
            depth,
            cfq: fig01_write_burst::run_one_with(&cfg.burst, SchedChoice::Cfq, Some(depth)),
            split: fig01_write_burst::run_one_with(
                &cfg.burst,
                SchedChoice::SplitToken,
                Some(depth),
            ),
        })
        .collect();
    FigResult { rows, cfg: *cfg }
}

/// Events processed by one quick CFQ write-burst run — the benchmark
/// harness divides this by wall-clock time to report events/second for
/// the serial path (`None`) against queued depths.
pub fn bench_events(queue_depth: Option<u32>) -> u64 {
    bench_run(queue_depth).events
}

/// What one quick write-burst run hands the bench harness: the event
/// count (throughput) plus every completed fsync latency (simulated-SLO
/// percentiles). Deterministic for a fixed `queue_depth`.
#[derive(Debug, Clone)]
pub struct BenchRun {
    /// Events the world processed.
    pub events: u64,
    /// Completed fsync latencies, milliseconds, in completion order.
    /// Empty for this workload (the burst writer never fsyncs); the
    /// `check` bench target supplies fsync-heavy programs.
    pub fsync_ms: Vec<f64>,
}

/// Run one quick CFQ write-burst and collect [`BenchRun`] measurements.
pub fn bench_run(queue_depth: Option<u32>) -> BenchRun {
    let cfg = fig01_write_burst::Config::quick();
    let (w, k, _a) = fig01_write_burst::build_burst_world(&cfg, SchedChoice::Cfq, queue_depth);
    collect_bench(w, k, &cfg)
}

/// [`bench_run`] with CFQ wrapped in a single catch-all layer. The
/// workload, kernel flags, and simulated results are byte-identical to
/// the flat run (the layer plane's degenerate-equivalence property),
/// so the events/sec gap between the `fig01` and `fig01_layered` panel
/// targets is purely the arbiter's indirection — the single-layer
/// overhead the acceptance bar keeps under 10%.
pub fn bench_run_layered(queue_depth: Option<u32>) -> BenchRun {
    let cfg = fig01_write_burst::Config::quick();
    let specs =
        split_layered::parse_layers("all:default:share:cfq").expect("single-layer tree parses");
    let arbiter = crate::setup::build_layered(specs, split_layered::LayeredConfig::default())
        .expect("cfq child resolves");
    let (w, k, _a) = fig01_write_burst::build_burst_world_with(
        &cfg,
        SchedChoice::Cfq,
        Box::new(arbiter),
        queue_depth,
    );
    collect_bench(w, k, &cfg)
}

fn collect_bench(
    mut w: sim_kernel::World,
    k: sim_core::KernelId,
    cfg: &fig01_write_burst::Config,
) -> BenchRun {
    w.run_for(cfg.duration);
    let mut fsync_ms: Vec<f64> = Vec::new();
    let stats = &w.kernel(k).stats;
    let mut pids: Vec<_> = stats.procs.keys().copied().collect();
    pids.sort_unstable();
    for pid in pids {
        fsync_ms.extend(
            stats.procs[&pid]
                .fsyncs
                .iter()
                .map(|(_, d)| d.as_millis_f64()),
        );
    }
    BenchRun {
        events: w.events_processed(),
        fsync_ms,
    }
}

impl std::fmt::Display for FigResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Figure 1 (queue-depth sweep) — Write Burst vs NCQ depth (burst at t={}s for {}s)",
            self.cfg.burst.burst_at.as_secs_f64(),
            self.cfg.burst.burst_len.as_secs_f64()
        )?;
        let mut t = Table::new([
            "depth",
            "cfq A before",
            "cfq A after",
            "cfq loss",
            "split A before",
            "split A after",
        ]);
        for r in &self.rows {
            t.row([
                r.depth.to_string(),
                format!("{} MB/s", f1(r.cfq.before)),
                format!("{} MB/s", f1(r.cfq.after)),
                format!("{}x", f1(r.cfq_degradation())),
                format!("{} MB/s", f1(r.split.before)),
                format!("{} MB/s", f1(r.split.after)),
            ]);
        }
        write!(f, "{}", t.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfq_collapse_deepens_with_queue_depth_while_split_token_stays_flat() {
        let r = run(&Config::quick());
        assert_eq!(r.rows.len(), DEPTHS.len());
        // Depth 1 reproduces the serial fig01 numbers.
        let serial = fig01_write_burst::run_one_with(&r.cfg.burst, SchedChoice::Cfq, None);
        assert_eq!(
            r.rows[0].cfq.a_mbps, serial.a_mbps,
            "depth 1 must be byte-identical to the serial device"
        );
        // CFQ's degradation deepens monotonically toward the paper's
        // near-collapse (small wobble tolerated; the trend must hold).
        let losses: Vec<f64> = r.rows.iter().map(|row| row.cfq_degradation()).collect();
        for w in losses.windows(2) {
            assert!(
                w[1] >= 0.9 * w[0],
                "deeper queues must not recover CFQ: {losses:?}"
            );
        }
        let shallow = losses[0];
        let deep = *losses.last().unwrap();
        assert!(
            deep > shallow,
            "depth 32 must hurt more than depth 1: {losses:?}"
        );
        assert!(
            deep >= 4.0,
            "depth 32 should approach the paper's collapse (≥4x): {losses:?}"
        );
        // Split-Token holds A flat within 5% of its pre-burst rate at
        // every depth.
        for row in &r.rows {
            assert!(
                row.split.after >= 0.95 * row.split.before,
                "split-token must stay flat at depth {}: {} vs {}",
                row.depth,
                row.split.after,
                row.split.before
            );
        }
    }

    #[test]
    fn bench_helper_counts_events() {
        let serial = bench_events(None);
        let depth1 = bench_events(Some(1));
        assert_eq!(serial, depth1, "depth 1 replays the serial event stream");
        assert!(serial > 0);
    }

    #[test]
    fn layered_bench_replays_the_flat_event_stream() {
        // The overhead pair is only meaningful if both sides simulate
        // the same history: a single-layer tree must be a pure wrapper.
        let flat = bench_run(None);
        let layered = bench_run_layered(None);
        assert_eq!(flat.events, layered.events);
        assert_eq!(flat.fsync_ms, layered.fsync_ms);
    }
}
