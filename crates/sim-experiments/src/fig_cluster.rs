//! Cluster figure — fleet-wide SLOs under a flash crowd.
//!
//! The paper's single-node experiments show CFQ cannot protect a
//! latency tenant from a buffered-write tenant because the damage is
//! done above the block layer (Figures 1, 12, 19). This figure runs the
//! same contest at fleet scale: a sharded replicated KV tier (commit on
//! quorum fsync) serves open-loop traffic while a batch writer dirties
//! pages on every shard, and partway through the run a flash crowd
//! multiplies the arrival rate. Split-Token caps the batch tenant at the
//! system-call level and holds the serving tier's p99 nearly flat
//! through the crowd; CFQ — even with the batch tenant in its idle
//! class — lets writeback amplify the surge into the commit path.

use sim_cluster::{
    run_cluster, samples_between, ArrivalKind, ClusterConfig, ClusterReport, ClusterSched,
    SloReport,
};
use sim_core::{SimDuration, SimTime};

use crate::table::{f1, Table};

/// Configuration.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// The fleet; its arrival process must be a flash crowd.
    pub fleet: ClusterConfig,
    /// Seconds to discard at the front of the "before" phase (cache and
    /// queue warm-up).
    pub warmup_s: f64,
    /// Worker threads for the parallel executor (output is identical at
    /// any value; >1 only helps wall-clock on multi-core hosts).
    pub jobs: usize,
    /// Experiment seed (0 = historical run).
    pub seed: u64,
}

impl Config {
    /// Small fleet for tests: 6 kernels, ~4 simulated seconds.
    pub fn quick() -> Self {
        Config {
            fleet: ClusterConfig {
                kernels: 6,
                duration: SimDuration::from_secs(4),
                arrival: ArrivalKind::FlashCrowd {
                    base: 20.0,
                    peak: 4.0,
                    start: SimTime::from_nanos(1_500_000_000),
                    ramp: SimDuration::from_millis(300),
                    hold: SimDuration::from_millis(1_500),
                    decay: SimDuration::from_millis(400),
                },
                ..Default::default()
            },
            warmup_s: 0.5,
            jobs: 1,
            seed: 0,
        }
    }

    /// Paper-scale fleet: 64 kernels, 12 simulated seconds.
    pub fn paper() -> Self {
        Config {
            fleet: ClusterConfig {
                kernels: 64,
                duration: SimDuration::from_secs(12),
                arrival: ArrivalKind::FlashCrowd {
                    base: 20.0,
                    peak: 4.0,
                    start: SimTime::from_nanos(4_000_000_000),
                    ramp: SimDuration::from_millis(500),
                    hold: SimDuration::from_millis(4_000),
                    decay: SimDuration::from_millis(1_000),
                },
                ..Default::default()
            },
            warmup_s: 1.0,
            jobs: 1,
            seed: 0,
        }
    }

    /// The `[before)` / `[during)` phase windows, in seconds, derived
    /// from the flash-crowd schedule. "During" starts once the ramp
    /// completes, so it measures the held peak.
    pub fn phases(&self) -> ((f64, f64), (f64, f64)) {
        match self.fleet.arrival {
            ArrivalKind::FlashCrowd {
                start, ramp, hold, ..
            } => {
                let s = start.as_secs_f64();
                let peak_from = s + ramp.as_secs_f64();
                (
                    (self.warmup_s.min(s), s),
                    (peak_from, peak_from + hold.as_secs_f64()),
                )
            }
            _ => {
                let half = self.fleet.duration.as_secs_f64() / 2.0;
                ((self.warmup_s.min(half), half), (half, 2.0 * half))
            }
        }
    }
}

/// SLOs for one phase of one scheduler's run.
#[derive(Debug, Clone)]
pub struct Phase {
    /// `before` or `during`.
    pub label: &'static str,
    /// Requests that arrived in the phase.
    pub count: usize,
    /// The phase's SLO table.
    pub slo: SloReport,
}

/// One scheduler's fleet run, cut into phases.
#[derive(Debug, Clone)]
pub struct SchedRun {
    /// Scheduler name.
    pub sched: &'static str,
    /// Quiet phase (post-warmup, pre-crowd).
    pub before: Phase,
    /// Held flash-crowd peak.
    pub during: Phase,
    /// The full run's report.
    pub report: ClusterReport,
}

impl SchedRun {
    /// p99 degradation factor of the put commit path under the crowd.
    pub fn put_p99_blowup(&self) -> f64 {
        self.during.slo.put_e2e.p99 / self.before.slo.put_e2e.p99.max(1e-9)
    }
}

/// Full figure: the same fleet under Split-Token and CFQ.
#[derive(Debug, Clone)]
pub struct FigResult {
    /// Split-Token fleet.
    pub split: SchedRun,
    /// CFQ fleet (batch tenant in the idle class — CFQ's best offer).
    pub cfq: SchedRun,
}

fn run_sched(cfg: &Config, sched: ClusterSched) -> SchedRun {
    let fleet = ClusterConfig {
        sched,
        seed: cfg.fleet.seed ^ cfg.seed,
        ..cfg.fleet
    };
    let report = run_cluster(&fleet, cfg.jobs.max(1));
    let ((b0, b1), (d0, d1)) = cfg.phases();
    let phase = |label, from, to| {
        let samples = samples_between(&report.samples, from, to);
        Phase {
            label,
            count: samples.len(),
            slo: SloReport::compute(&samples),
        }
    };
    SchedRun {
        sched: sched.name(),
        before: phase("before", b0, b1),
        during: phase("during", d0, d1),
        report,
    }
}

/// Run the figure.
pub fn run(cfg: &Config) -> FigResult {
    FigResult {
        split: run_sched(cfg, ClusterSched::SplitToken),
        cfq: run_sched(cfg, ClusterSched::Cfq),
    }
}

impl std::fmt::Display for FigResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let r = &self.split.report;
        writeln!(
            f,
            "Cluster figure — flash crowd over {} kernels ({} groups, r={}), {} arrivals",
            r.kernels, r.groups, r.replication, r.arrival
        )?;
        let mut t = Table::new([
            "sched",
            "phase",
            "reqs",
            "put p50 ms",
            "put p99 ms",
            "get p99 ms",
        ]);
        for run in [&self.split, &self.cfq] {
            for phase in [&run.before, &run.during] {
                t.row([
                    run.sched.to_string(),
                    phase.label.to_string(),
                    phase.count.to_string(),
                    f1(phase.slo.put_e2e.p50),
                    f1(phase.slo.put_e2e.p99),
                    f1(phase.slo.get_e2e.p99),
                ]);
            }
        }
        writeln!(f, "{}", t.render())?;
        writeln!(
            f,
            "put p99 blowup under the crowd: split-token {:.2}x, cfq {:.2}x",
            self.split.put_p99_blowup(),
            self.cfq.put_p99_blowup()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_token_holds_the_fleet_p99_flatter_than_cfq() {
        let r = run(&Config::quick());
        for run in [&r.split, &r.cfq] {
            assert!(
                run.before.count > 20 && run.during.count > 50,
                "{}: before={} during={}",
                run.sched,
                run.before.count,
                run.during.count
            );
            assert_eq!(run.report.late, 0);
        }
        assert!(
            r.cfq.during.slo.put_e2e.p99 > 2.0 * r.split.during.slo.put_e2e.p99,
            "under the crowd CFQ commits must be much slower at p99: cfq {:.2} vs split {:.2}",
            r.cfq.during.slo.put_e2e.p99,
            r.split.during.slo.put_e2e.p99
        );
        assert!(
            r.cfq.during.slo.get_e2e.p99 > r.split.during.slo.get_e2e.p99,
            "reads suffer too under CFQ: cfq {:.2} vs split {:.2}",
            r.cfq.during.slo.get_e2e.p99,
            r.split.during.slo.get_e2e.p99
        );
        assert!(
            r.cfq.put_p99_blowup() > r.split.put_p99_blowup(),
            "CFQ must degrade more: cfq {:.2}x vs split {:.2}x",
            r.cfq.put_p99_blowup(),
            r.split.put_p99_blowup()
        );
        assert!(
            r.split.put_p99_blowup() < 2.5,
            "split-token should hold p99 nearly flat: {:.2}x",
            r.split.put_p99_blowup()
        );
    }

    #[test]
    fn crowd_multiplies_arrivals_in_the_during_phase() {
        let cfg = Config::quick();
        let r = run(&cfg);
        let ((b0, b1), (d0, d1)) = cfg.phases();
        let before_rate = r.split.before.count as f64 / (b1 - b0);
        let during_rate = r.split.during.count as f64 / (d1 - d0);
        assert!(
            during_rate > 3.0 * before_rate,
            "flash crowd should multiply load: {before_rate:.0}/s -> {during_rate:.0}/s"
        );
    }

    #[test]
    fn figure_is_deterministic() {
        let cfg = Config::quick();
        let a = format!("{}", run(&cfg));
        let b = format!("{}", run(&cfg));
        assert_eq!(a, b);
    }
}
