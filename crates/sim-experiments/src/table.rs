//! Tiny text-table printer for paper-style output.

use std::fmt::Write as _;

/// A simple aligned text table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (cells are any Display).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        self.rows.push(cells.into_iter().map(Into::into).collect());
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self
            .rows
            .iter()
            .map(|r| r.len())
            .chain(std::iter::once(self.header.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; ncols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(out, "{:>w$}  ", c, w = widths[i]);
            }
            out.push('\n');
        };
        line(&self.header, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * ncols;
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }
}

/// Format a float with 1 decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Format a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Format milliseconds.
pub fn ms(x: f64) -> String {
    format!("{x:.1}ms")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(["workload", "MB/s"]);
        t.row(["seq", &f1(110.0)]);
        t.row(["random-4k", &f2(0.45)]);
        let s = t.render();
        assert!(s.contains("workload"));
        assert!(s.contains("110.0"));
        assert!(s.contains("0.45"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
    }
}
