//! Figures 6, 13 and 16 — token-bucket isolation.
//!
//! A reads sequentially (unthrottled); B runs 14 workloads — runs of R
//! bytes (4 KB … 16 MB) followed by a random seek, as reads and as writes
//! — throttled to 10 MB/s. A scheduler with correct cost accounting keeps
//! A's throughput flat across all 14; SCS-Token (Figure 6) does not,
//! because bytes are a poor proxy for device time. Split-Token on ext4
//! (Figure 13) and on XFS (Figure 16) reproduce the isolation.

use sim_core::{Pid, SimDuration};
use sim_kernel::FsChoice;
use sim_workloads::{RunPattern, SeqReader};
use split_core::SchedAttr;

use crate::setup::{build_world, SchedChoice, Setup};
use crate::table::{f1, Table};
use crate::{GB, KB, MB};

/// Configuration.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Simulated time per workload point.
    pub duration: SimDuration,
    /// Run sizes for B.
    pub runs: [u64; 7],
    /// B's throttle (bytes/second of accounted cost).
    pub b_rate: u64,
    /// A's file size (must exceed memory to keep A streaming).
    pub a_file: u64,
    /// B's file size (the paper uses 10 GB).
    pub b_file: u64,
    /// Experiment seed (0 = historical run).
    pub seed: u64,
}

impl Config {
    /// Small run for tests.
    pub fn quick() -> Self {
        Config {
            duration: SimDuration::from_secs(10),
            runs: [4 * KB, 16 * KB, 64 * KB, 256 * KB, MB, 4 * MB, 16 * MB],
            b_rate: 10 * MB,
            a_file: 4 * GB,
            b_file: 2 * GB,
            seed: 0,
        }
    }

    /// Paper-scale run.
    pub fn paper() -> Self {
        Config {
            duration: SimDuration::from_secs(30),
            ..Self::quick()
        }
    }
}

/// One workload point.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    /// B's run size in bytes.
    pub run: u64,
    /// Whether B writes (else reads).
    pub b_writes: bool,
    /// A's throughput (MB/s).
    pub a_mbps: f64,
    /// B's throughput (MB/s).
    pub b_mbps: f64,
}

/// Full result: 14 points plus the headline stddev.
#[derive(Debug, Clone)]
pub struct FigResult {
    /// Scheduler used.
    pub sched: &'static str,
    /// File system used.
    pub fs: &'static str,
    /// All 14 points.
    pub points: Vec<Point>,
    /// Standard deviation of A's throughput across the points — the
    /// paper's isolation metric (41 MB for SCS, 7 MB for Split on ext4,
    /// 12.8 MB on XFS).
    pub a_stddev: f64,
    /// Mean of A's throughput.
    pub a_mean: f64,
}

/// Run one point.
pub fn run_point(
    cfg: &Config,
    sched: SchedChoice,
    fs: FsChoice,
    run: u64,
    b_writes: bool,
) -> Point {
    let setup = match fs {
        FsChoice::Ext4 => Setup::new(sched),
        FsChoice::Xfs => Setup::new(sched).on_xfs(),
    };
    let (mut w, k) = build_world(setup.seed(cfg.seed));
    let a_file = w.prealloc_file(k, cfg.a_file, true);
    // B's file is aged/fragmented, as a long-lived 10 GB file would be.
    let b_file = w.prealloc_file(k, cfg.b_file, false);
    let a = w.spawn(k, Box::new(SeqReader::new(a_file, cfg.a_file, MB)));
    let b: Pid = w.spawn(
        k,
        Box::new(RunPattern::new(
            b_file,
            cfg.b_file,
            run,
            b_writes,
            cfg.seed ^ 0xBEE,
        )),
    );
    w.configure(k, b, SchedAttr::TokenRate(cfg.b_rate));
    w.run_for(cfg.duration);
    let stats = &w.kernel(k).stats;
    let a_mbps = stats.read_mbps(a, cfg.duration);
    let b_mbps = if b_writes {
        stats.write_mbps(b, cfg.duration)
    } else {
        stats.read_mbps(b, cfg.duration)
    };
    Point {
        run,
        b_writes,
        a_mbps,
        b_mbps,
    }
}

/// Run the 14-workload sweep for one scheduler/fs combination.
pub fn run_with(cfg: &Config, sched: SchedChoice, fs: FsChoice) -> FigResult {
    let mut points = Vec::new();
    for &b_writes in &[false, true] {
        for &run in &cfg.runs {
            points.push(run_point(cfg, sched, fs, run, b_writes));
        }
    }
    let a: Vec<f64> = points.iter().map(|p| p.a_mbps).collect();
    FigResult {
        sched: sched.name(),
        fs: match fs {
            FsChoice::Ext4 => "ext4",
            FsChoice::Xfs => "xfs",
        },
        points,
        a_stddev: sim_core::stats::stddev(&a),
        a_mean: sim_core::stats::mean(&a),
    }
}

/// Figure 6: SCS-Token on ext4.
pub fn run(cfg: &Config) -> FigResult {
    run_with(cfg, SchedChoice::ScsToken, FsChoice::Ext4)
}

/// Figure 13: Split-Token on ext4.
pub fn run_fig13(cfg: &Config) -> FigResult {
    run_with(cfg, SchedChoice::SplitToken, FsChoice::Ext4)
}

/// Figure 16: Split-Token on XFS.
pub fn run_fig16(cfg: &Config) -> FigResult {
    run_with(cfg, SchedChoice::SplitToken, FsChoice::Xfs)
}

impl std::fmt::Display for FigResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Token isolation — {} on {} (B throttled; A should stay flat)",
            self.sched, self.fs
        )?;
        let mut t = Table::new(["B workload", "run", "A MB/s", "B MB/s"]);
        for p in &self.points {
            t.row([
                if p.b_writes { "write" } else { "read" }.to_string(),
                format!("{} KB", p.run / KB),
                f1(p.a_mbps),
                f1(p.b_mbps),
            ]);
        }
        writeln!(f, "{}", t.render())?;
        writeln!(
            f,
            "A mean {} MB/s, stddev {} MB/s",
            f1(self.a_mean),
            f1(self.a_stddev)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scs_token_fails_isolation_where_split_token_succeeds() {
        let mut cfg = Config::quick();
        cfg.duration = SimDuration::from_secs(8);
        // A reduced sweep keeps the test fast but spans the failure modes:
        // tiny random runs vs large sequential runs, reads and writes.
        cfg.runs = [4 * KB, 4 * KB, 64 * KB, 64 * KB, 4 * MB, 4 * MB, 16 * MB];
        let scs = run_with(&cfg, SchedChoice::ScsToken, FsChoice::Ext4);
        let split = run_with(&cfg, SchedChoice::SplitToken, FsChoice::Ext4);
        assert!(
            scs.a_stddev > 2.0 * split.a_stddev,
            "SCS stddev {} should dwarf Split stddev {}",
            scs.a_stddev,
            split.a_stddev
        );
        // Split keeps A within a tight band.
        assert!(
            split.a_stddev / split.a_mean < 0.15,
            "split variation too high: {} / {}",
            split.a_stddev,
            split.a_mean
        );
    }

    #[test]
    fn b_random_reads_crush_a_under_scs() {
        let cfg = Config::quick();
        let p = run_point(&cfg, SchedChoice::ScsToken, FsChoice::Ext4, 4 * KB, false);
        // 10 MB/s of 4 KB random reads ≈ thousands of seeks per second:
        // far more device time than the throttle intends.
        assert!(
            p.a_mbps < 40.0,
            "A should be crushed by B's random reads under SCS: {}",
            p.a_mbps
        );
        let q = run_point(&cfg, SchedChoice::SplitToken, FsChoice::Ext4, 4 * KB, false);
        assert!(
            q.a_mbps > 2.0 * p.a_mbps,
            "Split should protect A: {} vs {}",
            q.a_mbps,
            p.a_mbps
        );
    }
}
