//! Figure 20 — token-bucket isolation between QEMU guests.
//!
//! The Figure 14 experiment with A and B inside separate VMs: guests run
//! vanilla kernels; the host throttles the B VM's host-side I/O process.
//! Isolation results match the bare-metal case; the interesting
//! difference is "write-mem": because the *guest's* page cache sits above
//! the host's throttle, even SCS-Token no longer penalizes memory-bound
//! workloads — the buffering layer position is what matters (§7.2).

use sim_apps::vmm::{launch_guest, GuestConfig};
use sim_core::SimDuration;
use sim_workloads::{MemOverwriter, RandReader, SeqReader};
use split_core::SchedAttr;

use crate::setup::{build_world, SchedChoice, Setup};
use crate::table::{f1, Table};
use crate::{GB, KB, MB};

/// B's workload inside its VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuestWorkload {
    /// 4 KB random reads from the virtual disk.
    ReadRand,
    /// Cached overwrites (guest page cache).
    WriteMem,
    /// Sequential reads from the virtual disk.
    ReadSeq,
}

impl GuestWorkload {
    /// Label.
    pub fn label(self) -> &'static str {
        match self {
            GuestWorkload::ReadRand => "read-rand",
            GuestWorkload::WriteMem => "write-mem",
            GuestWorkload::ReadSeq => "read-seq",
        }
    }
}

/// Configuration.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Simulated time per point.
    pub duration: SimDuration,
    /// B VM's throttle on the host.
    pub b_rate: u64,
    /// Experiment seed (0 = historical run).
    pub seed: u64,
}

impl Config {
    /// Small run for tests.
    pub fn quick() -> Self {
        Config {
            duration: SimDuration::from_secs(10),
            b_rate: MB,
            seed: 0,
        }
    }

    /// Paper-scale run.
    pub fn paper() -> Self {
        Config {
            duration: SimDuration::from_secs(30),
            ..Self::quick()
        }
    }
}

/// One point.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    /// B's in-guest workload.
    pub workload: GuestWorkload,
    /// A's throughput (MB/s), measured inside its guest.
    pub a_mbps: f64,
    /// B's throughput (MB/s), measured inside its guest.
    pub b_mbps: f64,
}

/// Full figure.
#[derive(Debug, Clone)]
pub struct FigResult {
    /// SCS-Token on the host.
    pub scs: Vec<Point>,
    /// Split-Token on the host.
    pub split: Vec<Point>,
}

/// Run one point: two guests on one host, B's VMM throttled.
pub fn run_point(cfg: &Config, host_sched: SchedChoice, wl: GuestWorkload) -> Point {
    let (mut w, host) = build_world(Setup::new(host_sched).seed(cfg.seed));
    let ga = launch_guest(&mut w, host, GuestConfig::default());
    let gb = launch_guest(&mut w, host, GuestConfig::default());
    // A: sequential reader inside its VM, over a >guest-RAM file.
    let a_file = w.prealloc_file(ga.kernel, 2 * GB, true);
    let a = w.spawn(ga.kernel, Box::new(SeqReader::new(a_file, 2 * GB, MB)));
    // B: its workload inside its VM.
    let b = match wl {
        GuestWorkload::ReadRand => {
            let f = w.prealloc_file(gb.kernel, 2 * GB, false);
            w.spawn(
                gb.kernel,
                Box::new(RandReader::new(f, 2 * GB, 4 * KB, cfg.seed ^ 0x20)),
            )
        }
        GuestWorkload::ReadSeq => {
            let f = w.prealloc_file(gb.kernel, 2 * GB, true);
            w.spawn(gb.kernel, Box::new(SeqReader::new(f, 2 * GB, 256 * KB)))
        }
        GuestWorkload::WriteMem => {
            let f = w.prealloc_file(gb.kernel, 32 * MB, true);
            w.spawn(gb.kernel, Box::new(MemOverwriter::new(f, 4 * MB, 64 * KB)))
        }
    };
    // Throttle the *whole B VM* on the host.
    w.configure(host, gb.vmm_pid, SchedAttr::TokenRate(cfg.b_rate));
    w.run_for(cfg.duration);
    Point {
        workload: wl,
        a_mbps: w.kernel(ga.kernel).stats.read_mbps(a, cfg.duration),
        b_mbps: {
            let st = w.kernel(gb.kernel).stats.proc(b);
            let bytes = st
                .map(|s| {
                    if wl == GuestWorkload::WriteMem {
                        s.write_bytes
                    } else {
                        s.read_bytes
                    }
                })
                .unwrap_or(0);
            bytes as f64 / 1e6 / cfg.duration.as_secs_f64()
        },
    }
}

/// Run the comparison.
pub fn run(cfg: &Config) -> FigResult {
    let sweep = |sched| {
        [
            GuestWorkload::ReadRand,
            GuestWorkload::ReadSeq,
            GuestWorkload::WriteMem,
        ]
        .iter()
        .map(|&wl| run_point(cfg, sched, wl))
        .collect::<Vec<_>>()
    };
    FigResult {
        scs: sweep(SchedChoice::ScsToken),
        split: sweep(SchedChoice::SplitToken),
    }
}

impl std::fmt::Display for FigResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Figure 20 — QEMU guests: B VM throttled on the host")?;
        let mut t = Table::new([
            "B workload",
            "A scs MB/s",
            "A split MB/s",
            "B scs MB/s",
            "B split MB/s",
        ]);
        for (s, p) in self.scs.iter().zip(&self.split) {
            t.row([
                p.workload.label().to_string(),
                f1(s.a_mbps),
                f1(p.a_mbps),
                f1(s.b_mbps),
                f1(p.b_mbps),
            ]);
        }
        write!(f, "{}", t.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_token_isolates_vms_where_scs_fails_on_random_io() {
        let cfg = Config::quick();
        let scs = run_point(&cfg, SchedChoice::ScsToken, GuestWorkload::ReadRand);
        let split = run_point(&cfg, SchedChoice::SplitToken, GuestWorkload::ReadRand);
        assert!(
            split.a_mbps > 1.5 * scs.a_mbps,
            "split A {} vs scs A {}",
            split.a_mbps,
            scs.a_mbps
        );
    }

    #[test]
    fn guest_page_cache_makes_write_mem_fast_even_under_scs() {
        // §7.2's observation: with the cache *above* the throttle (in the
        // guest), memory-bound workloads are fast under both schedulers.
        let cfg = Config::quick();
        let scs = run_point(&cfg, SchedChoice::ScsToken, GuestWorkload::WriteMem);
        let split = run_point(&cfg, SchedChoice::SplitToken, GuestWorkload::WriteMem);
        assert!(scs.b_mbps > 50.0, "scs write-mem in VM: {}", scs.b_mbps);
        assert!(
            split.b_mbps > 50.0,
            "split write-mem in VM: {}",
            split.b_mbps
        );
        let ratio = split.b_mbps / scs.b_mbps;
        assert!(
            (0.3..3.0).contains(&ratio),
            "in VMs the two should be comparable, got ratio {ratio}"
        );
    }
}
