//! fig_layers — hierarchical multi-tenant layer plane.
//!
//! Three tenants share one device: a latency tenant (small appends +
//! fsync, a database log), a noisy neighbor (an analytics scan issuing
//! a firehose of random reads), and a capped batch tenant (sequential
//! bulk writes). Under the layer tree the latency
//! tenant rides a latency-priority layer over the deadline elevator,
//! the batch tenant a bandwidth-capped layer over CFQ, and the noise
//! lands in the default share layer over Split-Token; cause-tag latency
//! inheritance routes shared journal commits the latency tenant waits
//! on ahead of the noise. The claim: the layer plane holds the latency
//! tenant's fsync p99 near its solo baseline *and* pins the batch
//! tenant under its cap (verified by the [`LayerAuditor`]'s envelope),
//! while a flat scheduler given the same three tenants violates at
//! least one of those bounds.
//!
//! Each run covers the serial plane and a queued (NCQ depth 8) plane on
//! the configured device; the registry's device axis supplies hdd/ssd.

use sim_check::{AuditPlane, LayerAuditor};
use sim_core::{stats::Percentiles, SimDuration};
use sim_workloads::{FsyncAppender, RandReader, SeqWriter};
use split_layered::{parse_layers, LayerSpec, LayeredConfig};

use crate::setup::{
    build_layered, build_world, build_world_with, DeviceChoice, SchedChoice, Setup,
};
use crate::table::{f1, ms, Table};
use crate::{GB, KB, MB};

/// Configuration.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Simulated time per arm.
    pub duration: SimDuration,
    /// Batch tenant's bandwidth cap (bytes/second of admitted writes).
    pub cap: u64,
    /// Latency tenant's append size per fsync (a WAL group commit).
    /// Large enough that the 1.5× solo SLO leaves headroom above a
    /// single device service quantum — on a non-preemptible device any
    /// scheduler eats up to one in-flight request of blocking.
    pub lat_append: u64,
    /// Batch tenant's write block size. Small blocks keep the ordered
    /// entanglement residual (dirty batch data a shared commit must
    /// flush) to a fraction of the SLO headroom.
    pub batch_block: u64,
    /// Noisy neighbor's request size (random reads).
    pub noisy_req: u64,
    /// Arbiter-wide dirty budget, split across layers by share. Keeps
    /// the noisy layer's write-behind from saturating the shared dirty
    /// pool (global threshold is ~102 MB at the default 512 MB / 0.20).
    pub dirty_budget: u64,
    /// Device plane.
    pub device: DeviceChoice,
    /// NCQ depth for the queued plane.
    pub queue_depth: u32,
    /// Experiment seed (0 = historical run).
    pub seed: u64,
}

impl Config {
    /// HDD run (quick).
    pub fn quick_hdd() -> Self {
        Config {
            duration: SimDuration::from_secs(10),
            cap: 4 * MB,
            lat_append: 256 * KB,
            batch_block: 64 * KB,
            noisy_req: 64 * KB,
            dirty_budget: 48 * MB,
            device: DeviceChoice::Hdd,
            queue_depth: 8,
            seed: 0,
        }
    }

    /// SSD run (quick).
    pub fn quick_ssd() -> Self {
        Config {
            device: DeviceChoice::Ssd,
            ..Self::quick_hdd()
        }
    }

    /// Paper-scale HDD run.
    pub fn paper_hdd() -> Self {
        Config {
            duration: SimDuration::from_secs(30),
            ..Self::quick_hdd()
        }
    }
}

/// Spawn order is fixed (latency, noisy, capped), so the tree can bind
/// tenants with explicit pid rules — which also keeps every rule
/// pid-decidable, the precondition for the [`LayerAuditor`] replay.
const LAT_PID: u32 = 10;
const CAPPED_PID: u32 = 12;

/// The three-tenant layer tree for one cap value.
pub fn tenant_tree(cap: u64) -> Vec<LayerSpec> {
    parse_layers(&format!(
        "lat:pids={LAT_PID}:latency:block-deadline;\
         batch:pids={CAPPED_PID}:cap={cap}:cfq;\
         bulk:default:share:split-token"
    ))
    .expect("tenant tree parses")
}

/// One arm's measurements.
#[derive(Debug, Clone)]
pub struct TenantRun {
    /// Arm label ("solo", "layered", "flat cfq").
    pub label: &'static str,
    /// Latency tenant's fsync p99 (ms), after a 1 s warm-up.
    pub lat_p99_ms: f64,
    /// Latency tenant's completed fsyncs.
    pub lat_fsyncs: usize,
    /// Batch tenant's admitted write throughput (MB/s); 0 when absent.
    pub capped_mbps: f64,
    /// Noisy neighbor's admitted write throughput (MB/s); 0 when absent.
    pub noisy_mbps: f64,
    /// Layer-auditor violations (layered arms only; flat has no plane).
    pub audit_violations: usize,
}

/// One device plane (serial or queued) — all three arms plus the bounds.
#[derive(Debug, Clone)]
pub struct PlaneResult {
    /// Plane label ("serial" or "qd=8").
    pub plane: String,
    /// Latency tenant alone under the layer tree (the SLO baseline).
    pub solo: TenantRun,
    /// All three tenants under the layer tree.
    pub layered: TenantRun,
    /// All three tenants under flat CFQ.
    pub flat: TenantRun,
}

impl PlaneResult {
    /// Bound 1: layered p99 within 1.5× the solo baseline.
    pub fn latency_ok(&self) -> bool {
        self.layered.lat_p99_ms <= 1.5 * self.solo.lat_p99_ms
    }

    /// Bound 2: batch tenant inside its cap (admitted throughput within
    /// the bucket's rate + one-burst allowance) and the auditor's
    /// envelope never tripped.
    pub fn cap_ok(&self, cap_bound_mbps: f64) -> bool {
        self.layered.capped_mbps <= cap_bound_mbps && self.layered.audit_violations == 0
    }

    /// Does the flat scheduler violate at least one bound?
    pub fn flat_violates(&self, cap_bound_mbps: f64) -> bool {
        self.flat.lat_p99_ms > 1.5 * self.solo.lat_p99_ms || self.flat.capped_mbps > cap_bound_mbps
    }
}

/// Full figure result.
#[derive(Debug, Clone)]
pub struct FigResult {
    /// Serial plane.
    pub serial: PlaneResult,
    /// Queued plane (NCQ depth `cfg.queue_depth`).
    pub queued: PlaneResult,
    /// Whether the tree's guarantees were feasible as requested.
    pub solver_feasible: bool,
    /// Solver adjustments applied (0 when feasible).
    pub solver_adjustments: usize,
    /// Config used.
    pub cfg: Config,
}

impl FigResult {
    /// The admitted-throughput bound implied by the cap: sustained rate
    /// plus the bucket's one-second burst, amortized over the run, with
    /// 5% measurement slack.
    pub fn cap_bound_mbps(&self) -> f64 {
        let rate = self.cfg.cap as f64 / MB as f64;
        let dur = self.cfg.duration.as_secs_f64();
        rate * (1.0 + 1.0 / dur) * 1.05
    }
}

/// A built (not yet run) arm: the world plus the tenant pids the
/// measurements key on.
struct ArmWorld {
    w: sim_kernel::World,
    k: sim_core::KernelId,
    lat: sim_core::Pid,
    tenants: Option<(sim_core::Pid, sim_core::Pid)>,
}

fn build_arm(cfg: &Config, queued: bool, layered: bool, with_noise: bool) -> ArmWorld {
    let sched = if layered {
        SchedChoice::Layered
    } else {
        SchedChoice::Cfq
    };
    let mut setup = Setup {
        device: cfg.device,
        seed: cfg.seed,
        ..Setup::new(sched)
    };
    if queued {
        setup = setup.queue_depth(cfg.queue_depth);
    }
    let specs = tenant_tree(cfg.cap);
    let lcfg = LayeredConfig {
        dirty_budget: Some(cfg.dirty_budget),
        eager_wb_bytes: Some(cfg.batch_block),
        ..LayeredConfig::default()
    };
    let (mut w, k) = if layered {
        let arbiter = build_layered(specs.clone(), lcfg).expect("tenant tree children resolve");
        build_world_with(setup, Box::new(arbiter))
    } else {
        build_world(setup)
    };
    if layered {
        w.kernel_mut(k)
            .install_audit_plane(AuditPlane::new(vec![Box::new(LayerAuditor::new(specs))]));
    }
    let lat_file = w.prealloc_file(k, 256 * MB, true);
    let lat = w.spawn(
        k,
        Box::new(FsyncAppender::new(
            lat_file,
            cfg.lat_append,
            SimDuration::from_millis(20),
        )),
    );
    assert_eq!(lat.0, LAT_PID, "spawn order fixes the latency tenant pid");
    let tenants = with_noise.then(|| {
        let noisy_file = w.prealloc_file(k, GB, true);
        let capped_file = w.prealloc_file(k, GB, true);
        let noisy = w.spawn(
            k,
            Box::new(RandReader::new(
                noisy_file,
                GB,
                cfg.noisy_req,
                cfg.seed ^ 0x0151,
            )),
        );
        let capped = w.spawn(
            k,
            Box::new(SeqWriter::new(capped_file, GB, cfg.batch_block)),
        );
        assert_eq!(capped.0, CAPPED_PID, "spawn order fixes the batch pid");
        (noisy, capped)
    });
    ArmWorld { w, k, lat, tenants }
}

fn run_arm(cfg: &Config, queued: bool, layered: bool, with_noise: bool) -> TenantRun {
    let ArmWorld {
        mut w,
        k,
        lat,
        tenants,
    } = build_arm(cfg, queued, layered, with_noise);
    w.run_for(cfg.duration);
    let stats = &w.kernel(k).stats;
    let lat_ms: Vec<f64> = stats
        .proc(lat)
        .map(|s| {
            s.fsyncs
                .iter()
                .filter(|(t, _)| t.as_secs_f64() > 1.0)
                .map(|(_, d)| d.as_millis_f64())
                .collect()
        })
        .unwrap_or_default();
    let lat_fsyncs = lat_ms.len();
    let (noisy_mbps, capped_mbps) = tenants
        .map(|(noisy, capped)| {
            (
                stats.read_mbps(noisy, cfg.duration),
                stats.write_mbps(capped, cfg.duration),
            )
        })
        .unwrap_or((0.0, 0.0));
    TenantRun {
        label: match (layered, with_noise) {
            (true, false) => "solo",
            (true, true) => "layered",
            (false, _) => "flat cfq",
        },
        lat_p99_ms: Percentiles::new(lat_ms).p99(),
        lat_fsyncs,
        capped_mbps,
        noisy_mbps,
        audit_violations: w
            .kernel(k)
            .audit_plane()
            .map(|p| p.violations().len())
            .unwrap_or(0),
    }
}

fn run_plane(cfg: &Config, queued: bool) -> PlaneResult {
    PlaneResult {
        plane: if queued {
            format!("qd={}", cfg.queue_depth)
        } else {
            "serial".to_string()
        },
        solo: run_arm(cfg, queued, true, false),
        layered: run_arm(cfg, queued, true, true),
        flat: run_arm(cfg, queued, false, true),
    }
}

/// Run both planes on the configured device.
pub fn run(cfg: &Config) -> FigResult {
    let feas = build_layered(tenant_tree(cfg.cap), LayeredConfig::default())
        .expect("tenant tree children resolve")
        .feasibility()
        .clone();
    FigResult {
        serial: run_plane(cfg, false),
        queued: run_plane(cfg, true),
        solver_feasible: feas.feasible(),
        solver_adjustments: feas.adjustments.len(),
        cfg: *cfg,
    }
}

/// What one quick layered run (SSD, serial plane, all three tenants)
/// hands the bench harness: total events plus the latency tenant's
/// fsync latencies. Unlike the `fig01_layered` passthrough probe, this
/// prices the full arbiter — classification, nested dispatch, cap
/// charging, dirty budgets, boost windows — plus the layer auditor's
/// replay, so the regression gate tracks the plane's hot path end to
/// end.
pub fn bench_run() -> crate::fig01_qd::BenchRun {
    let cfg = Config::quick_ssd();
    let ArmWorld { mut w, k, lat, .. } = build_arm(&cfg, false, true, true);
    w.run_for(cfg.duration);
    let fsync_ms = w
        .kernel(k)
        .stats
        .proc(lat)
        .map(|s| s.fsyncs.iter().map(|(_, d)| d.as_millis_f64()).collect())
        .unwrap_or_default();
    crate::fig01_qd::BenchRun {
        events: w.events_processed(),
        fsync_ms,
    }
}

impl std::fmt::Display for FigResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "fig_layers — multi-tenant layer plane ({:?}, cap {} MB/s)",
            self.cfg.device,
            self.cfg.cap / MB
        )?;
        let bound = self.cap_bound_mbps();
        for p in [&self.serial, &self.queued] {
            let mut t = Table::new([
                "arm",
                "lat p99",
                "fsyncs",
                "capped MB/s",
                "noisy MB/s",
                "audit",
            ]);
            for a in [&p.solo, &p.layered, &p.flat] {
                t.row([
                    a.label.to_string(),
                    ms(a.lat_p99_ms),
                    a.lat_fsyncs.to_string(),
                    f1(a.capped_mbps),
                    f1(a.noisy_mbps),
                    a.audit_violations.to_string(),
                ]);
            }
            writeln!(f, "[{}]", p.plane)?;
            writeln!(f, "{}", t.render())?;
            writeln!(
                f,
                "latency SLO {} | cap {} | flat violates a bound: {}",
                if p.latency_ok() { "held" } else { "BROKEN" },
                if p.cap_ok(bound) { "held" } else { "BROKEN" },
                if p.flat_violates(bound) { "yes" } else { "NO" },
            )?;
        }
        write!(
            f,
            "solver: {} ({} adjustment(s))",
            if self.solver_feasible {
                "feasible as requested"
            } else {
                "repaired"
            },
            self.solver_adjustments
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_bounds(r: &FigResult) {
        let bound = r.cap_bound_mbps();
        for p in [&r.serial, &r.queued] {
            let tag = format!("{:?}/{}", r.cfg.device, p.plane);
            assert!(
                p.solo.lat_fsyncs > 20 && p.layered.lat_fsyncs > 20,
                "{tag}: latency tenant barely ran: solo {} layered {}",
                p.solo.lat_fsyncs,
                p.layered.lat_fsyncs
            );
            assert!(
                p.latency_ok(),
                "{tag}: layered p99 {} vs solo {} breaks the 1.5x SLO",
                p.layered.lat_p99_ms,
                p.solo.lat_p99_ms
            );
            assert!(
                p.cap_ok(bound),
                "{tag}: batch tenant {} MB/s vs bound {} ({} auditor violations)",
                p.layered.capped_mbps,
                bound,
                p.layered.audit_violations
            );
            assert!(
                p.flat_violates(bound),
                "{tag}: flat cfq held every bound (p99 {} vs solo {}, capped {} vs {})",
                p.flat.lat_p99_ms,
                p.solo.lat_p99_ms,
                p.flat.capped_mbps,
                bound
            );
        }
    }

    #[test]
    fn layer_plane_holds_bounds_on_ssd() {
        let r = run(&Config::quick_ssd());
        // The 4 MB/s cap is far below the batch layer's weighted
        // entitlement: the solver must clip it and say so.
        assert!(!r.solver_feasible, "expected a DominantCapped repair");
        assert!(r.solver_adjustments >= 1);
        assert_bounds(&r);
    }

    #[test]
    fn layer_plane_holds_bounds_on_hdd() {
        let r = run(&Config::quick_hdd());
        assert_bounds(&r);
    }
}
