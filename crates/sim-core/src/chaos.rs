//! The chaos plane: seeded adversarial timing perturbation.
//!
//! Every correctness result in this repo is otherwise proven under *one*
//! legal timing per seed. The chaos plane (the `scx_chaos` analogue)
//! perturbs that timing — within legal bounds — so the auditors and the
//! differential check harness explore many legal interleavings instead of
//! the single golden one.
//!
//! Four perturbation classes, each drawn from its own independent RNG
//! stream (`SimRng::stream(seed, class)`), so toggling one class never
//! changes what another class draws:
//!
//! * [`ChaosClass::Writeback`] (`wb`) — scales each writeback-daemon poll
//!   interval by a factor in `[1 - j, 1 + j]`, so background writeback
//!   wakes early or late instead of on the exact `wb_tick` grid.
//! * [`ChaosClass::CpuSlice`] (`cpu`) — adds a bounded, non-negative
//!   wakeup delay to every process CPU slice (compute and post-syscall),
//!   reordering runnable processes the way a shaken CPU scheduler would.
//! * [`ChaosClass::Journal`] (`journal`) — scales the jbd2 commit timer's
//!   poll interval the same way `wb` scales writeback, moving periodic
//!   commits off their grid.
//! * [`ChaosClass::Completion`] (`complete`) — stretches device service
//!   times by a factor in `[1, 1 + s]` and rotates the blk-mq software
//!   queue round-robin cursor, reordering queued-device completions
//!   within the in-flight window.
//!
//! Legality bounds, by construction:
//!
//! * every perturbed interval stays strictly positive, so nothing is ever
//!   scheduled into the past (late schedules are a hard error);
//! * CPU delays and service stretches only *add* time — no event is moved
//!   earlier than its unperturbed cause;
//! * queue-cursor rotation only re-picks which software queue drains
//!   next: per-process FIFO order within each queue is untouched, and
//!   completion reorder stays within the device's in-flight window.
//!
//! The plane follows the fault/audit/profiler idiom: `Option`-installed
//! through the kernel config, and the `None` path is byte-identical to a
//! build without the plane.

use crate::rng::SimRng;
use crate::time::SimDuration;

/// One perturbation class (an independent seed stream).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosClass {
    /// Writeback-daemon wakeup jitter (`wb`).
    Writeback,
    /// Process CPU-slice wakeup delay (`cpu`).
    CpuSlice,
    /// Journal commit-timer jitter (`journal`).
    Journal,
    /// Queued-device completion order: service stretch + queue rotation
    /// (`complete`).
    Completion,
}

impl ChaosClass {
    /// Every class, in seed-stream order.
    pub const ALL: [ChaosClass; 4] = [
        ChaosClass::Writeback,
        ChaosClass::CpuSlice,
        ChaosClass::Journal,
        ChaosClass::Completion,
    ];

    /// The CLI name (`--chaos-classes wb,cpu,journal,complete`).
    pub fn name(self) -> &'static str {
        match self {
            ChaosClass::Writeback => "wb",
            ChaosClass::CpuSlice => "cpu",
            ChaosClass::Journal => "journal",
            ChaosClass::Completion => "complete",
        }
    }

    /// Parse a CLI name.
    pub fn parse(s: &str) -> Option<ChaosClass> {
        Some(match s {
            "wb" => ChaosClass::Writeback,
            "cpu" => ChaosClass::CpuSlice,
            "journal" => ChaosClass::Journal,
            "complete" => ChaosClass::Completion,
            _ => return None,
        })
    }

    /// Seed-stream index; also the index into [`ChaosConfig`]'s toggles.
    fn index(self) -> usize {
        match self {
            ChaosClass::Writeback => 0,
            ChaosClass::CpuSlice => 1,
            ChaosClass::Journal => 2,
            ChaosClass::Completion => 3,
        }
    }
}

/// The queue-rotation sub-stream of the completion class. Rotation and
/// service stretch share one toggle but must not share one RNG: the
/// stretch stream may move into the queued device while the rotation
/// stream stays with the kernel's dispatch pump.
const ROTATION_STREAM: u64 = 4;

/// Chaos plane configuration: one root seed, per-class toggles, and the
/// legality bounds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Root seed; each class derives stream `(seed, class_index)`.
    pub seed: u64,
    /// Which classes actively perturb (a disabled class draws nothing).
    enabled: [bool; 4],
    /// Writeback tick scale half-width: each poll interval is scaled by a
    /// factor in `[1 - wb_jitter, 1 + wb_jitter]`, floored at 1 ns.
    pub wb_jitter: f64,
    /// Maximum added CPU-slice wakeup delay.
    pub cpu_delay: SimDuration,
    /// Journal commit-timer scale half-width (same shape as `wb_jitter`).
    pub journal_jitter: f64,
    /// Maximum added service-time fraction: each service time is scaled
    /// by a factor in `[1, 1 + completion_stretch]`.
    pub completion_stretch: f64,
}

impl ChaosConfig {
    /// All four classes enabled at the default bounds.
    pub fn with_seed(seed: u64) -> Self {
        ChaosConfig {
            seed,
            enabled: [true; 4],
            wb_jitter: 0.5,
            cpu_delay: SimDuration::from_micros(200),
            journal_jitter: 0.5,
            completion_stretch: 0.5,
        }
    }

    /// Only the listed classes enabled (an empty list perturbs nothing —
    /// the byte-identity regression tests use exactly that).
    pub fn only(seed: u64, classes: &[ChaosClass]) -> Self {
        let mut cfg = ChaosConfig::with_seed(seed);
        cfg.enabled = [false; 4];
        for c in classes {
            cfg.enabled[c.index()] = true;
        }
        cfg
    }

    /// Whether `class` actively perturbs.
    pub fn is_enabled(&self, class: ChaosClass) -> bool {
        self.enabled[class.index()]
    }

    /// The enabled classes, in seed-stream order.
    pub fn classes(&self) -> Vec<ChaosClass> {
        ChaosClass::ALL
            .into_iter()
            .filter(|c| self.is_enabled(*c))
            .collect()
    }
}

/// The completion class's service-stretch stream, packaged so the queued
/// device can own it: stretches service times by a factor in
/// `[1, 1 + max_stretch)`, exactly the mechanism of a fault-plane spike
/// (completions only move later, never earlier).
#[derive(Debug, Clone)]
pub struct CompletionJitter {
    rng: SimRng,
    max_stretch: f64,
}

impl CompletionJitter {
    /// Draw the next service-time stretch factor, always `>= 1`.
    pub fn stretch(&mut self) -> f64 {
        1.0 + self.rng.gen_f64() * self.max_stretch.max(0.0)
    }
}

/// The runtime chaos plane built from a [`ChaosConfig`]. Lives inside
/// the kernel (`Option`-installed); every draw method is the identity
/// and draws nothing when its class is disabled.
#[derive(Debug)]
pub struct ChaosPlane {
    cfg: ChaosConfig,
    wb: SimRng,
    cpu: SimRng,
    journal: SimRng,
    /// `None` after [`ChaosPlane::take_completion_jitter`] moved the
    /// stream into the queued device (the serial plane keeps it here).
    completion: Option<CompletionJitter>,
    rotation: SimRng,
}

impl ChaosPlane {
    /// Build the plane; each class gets stream `(cfg.seed, class_index)`.
    pub fn new(cfg: &ChaosConfig) -> Self {
        ChaosPlane {
            cfg: *cfg,
            wb: SimRng::stream(cfg.seed, ChaosClass::Writeback.index() as u64),
            cpu: SimRng::stream(cfg.seed, ChaosClass::CpuSlice.index() as u64),
            journal: SimRng::stream(cfg.seed, ChaosClass::Journal.index() as u64),
            completion: Some(CompletionJitter {
                rng: SimRng::stream(cfg.seed, ChaosClass::Completion.index() as u64),
                max_stretch: cfg.completion_stretch,
            }),
            rotation: SimRng::stream(cfg.seed, ROTATION_STREAM),
        }
    }

    /// The configuration the plane was built from.
    pub fn config(&self) -> &ChaosConfig {
        &self.cfg
    }

    /// Scale `interval` by a factor in `[1 - j, 1 + j]`, floored at 1 ns
    /// so the jittered timer always lands strictly in the future.
    fn jitter_interval(rng: &mut SimRng, interval: SimDuration, j: f64) -> SimDuration {
        let j = j.clamp(0.0, 1.0);
        let factor = 1.0 - j + rng.gen_f64() * 2.0 * j;
        interval.mul_f64(factor).max(SimDuration::from_nanos(1))
    }

    /// The writeback daemon's next poll interval.
    pub fn wb_tick(&mut self, base: SimDuration) -> SimDuration {
        if !self.cfg.is_enabled(ChaosClass::Writeback) {
            return base;
        }
        Self::jitter_interval(&mut self.wb, base, self.cfg.wb_jitter)
    }

    /// Extra wakeup delay for one process CPU slice (zero when off).
    pub fn cpu_delay(&mut self) -> SimDuration {
        if !self.cfg.is_enabled(ChaosClass::CpuSlice) {
            return SimDuration::ZERO;
        }
        let max = self.cfg.cpu_delay.as_nanos();
        SimDuration::from_nanos(self.cpu.gen_range(max.saturating_add(1)))
    }

    /// The journal commit timer's next poll interval.
    pub fn journal_tick(&mut self, base: SimDuration) -> SimDuration {
        if !self.cfg.is_enabled(ChaosClass::Journal) {
            return base;
        }
        Self::jitter_interval(&mut self.journal, base, self.cfg.journal_jitter)
    }

    /// The next serial-device service-time stretch factor (1.0 when off).
    pub fn service_stretch(&mut self) -> f64 {
        if !self.cfg.is_enabled(ChaosClass::Completion) {
            return 1.0;
        }
        match self.completion.as_mut() {
            Some(j) => j.stretch(),
            None => 1.0,
        }
    }

    /// Detach the service-stretch stream for the queued device to own.
    /// Returns `None` when the completion class is off (the device then
    /// stays chaos-free and byte-identical).
    pub fn take_completion_jitter(&mut self) -> Option<CompletionJitter> {
        if !self.cfg.is_enabled(ChaosClass::Completion) {
            return None;
        }
        self.completion.take()
    }

    /// How far to rotate the blk-mq round-robin cursor before the next
    /// software-queue pop; uniform in `[0, queues)`, zero when off.
    pub fn mq_rotation(&mut self, queues: usize) -> usize {
        if queues < 2 || !self.cfg.is_enabled(ChaosClass::Completion) {
            return 0;
        }
        self.rotation.gen_range(queues as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_names_round_trip() {
        for c in ChaosClass::ALL {
            assert_eq!(ChaosClass::parse(c.name()), Some(c));
        }
        assert_eq!(ChaosClass::parse("frobnicate"), None);
    }

    #[test]
    fn disabled_classes_are_the_identity_and_draw_nothing() {
        let mut p = ChaosPlane::new(&ChaosConfig::only(7, &[]));
        let base = SimDuration::from_millis(200);
        for _ in 0..100 {
            assert_eq!(p.wb_tick(base), base);
            assert_eq!(p.cpu_delay(), SimDuration::ZERO);
            assert_eq!(p.journal_tick(base), base);
            assert_eq!(p.service_stretch(), 1.0);
            assert_eq!(p.mq_rotation(8), 0);
        }
        assert!(p.take_completion_jitter().is_none());
    }

    #[test]
    fn draws_respect_the_legality_bounds() {
        let cfg = ChaosConfig::with_seed(42);
        let mut p = ChaosPlane::new(&cfg);
        let base = SimDuration::from_millis(200);
        for _ in 0..10_000 {
            let wb = p.wb_tick(base);
            assert!(wb > SimDuration::ZERO, "never schedule into the past");
            assert!(wb >= base.mul_f64(1.0 - cfg.wb_jitter - 1e-9));
            assert!(wb <= base.mul_f64(1.0 + cfg.wb_jitter + 1e-9));
            let d = p.cpu_delay();
            assert!(d <= cfg.cpu_delay, "cpu delay within bound");
            let jt = p.journal_tick(base);
            assert!(jt > SimDuration::ZERO);
            let s = p.service_stretch();
            assert!(
                (1.0..=1.0 + cfg.completion_stretch).contains(&s),
                "completions only move later: {s}"
            );
            assert!(p.mq_rotation(5) < 5);
        }
        // A tiny base interval still never reaches zero.
        assert!(p.wb_tick(SimDuration::from_nanos(1)) >= SimDuration::from_nanos(1));
    }

    #[test]
    fn class_streams_are_independent() {
        // Toggling one class off must not change what the others draw.
        let all = ChaosConfig::with_seed(9);
        let no_cpu = ChaosConfig::only(
            9,
            &[
                ChaosClass::Writeback,
                ChaosClass::Journal,
                ChaosClass::Completion,
            ],
        );
        let mut a = ChaosPlane::new(&all);
        let mut b = ChaosPlane::new(&no_cpu);
        let base = SimDuration::from_millis(200);
        for _ in 0..200 {
            // Interleave cpu draws on `a` only; wb/journal/completion
            // sequences must stay identical.
            let _ = a.cpu_delay();
            assert_eq!(a.wb_tick(base), b.wb_tick(base));
            assert_eq!(a.journal_tick(base), b.journal_tick(base));
            assert_eq!(a.service_stretch(), b.service_stretch());
            assert_eq!(a.mq_rotation(4), b.mq_rotation(4));
        }
    }

    #[test]
    fn same_seed_same_draws() {
        let cfg = ChaosConfig::with_seed(3);
        let mut a = ChaosPlane::new(&cfg);
        let mut b = ChaosPlane::new(&cfg);
        let base = SimDuration::from_secs(1);
        for _ in 0..100 {
            assert_eq!(a.wb_tick(base), b.wb_tick(base));
            assert_eq!(a.cpu_delay(), b.cpu_delay());
            assert_eq!(a.journal_tick(base), b.journal_tick(base));
            assert_eq!(a.service_stretch(), b.service_stretch());
        }
    }

    #[test]
    fn completion_jitter_detaches_for_the_queued_device() {
        let mut p = ChaosPlane::new(&ChaosConfig::with_seed(5));
        let mut j = p.take_completion_jitter().expect("class enabled");
        // Once detached, the plane's serial-path stretch goes quiet and
        // the detached handle keeps drawing the same stream.
        assert_eq!(p.service_stretch(), 1.0);
        let mut fresh = ChaosPlane::new(&ChaosConfig::with_seed(5));
        for _ in 0..50 {
            assert_eq!(j.stretch(), fresh.service_stretch());
            assert!(j.stretch() >= 1.0);
            let _ = fresh.service_stretch();
        }
    }
}
