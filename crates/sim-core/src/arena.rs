//! Index-keyed arenas for hot kernel state.
//!
//! The simulator's transient objects — block requests, in-flight I/O
//! tokens, processes — are keyed by monotonically increasing integer ids
//! ([`crate::IdAlloc`]). Storing them in `HashMap`s costs a hash + probe
//! per touch and an allocation per insert. [`IdWindow`] exploits the
//! monotonic key shape instead: live ids cluster in a bounded window
//! `[base, base + len)`, so a `VecDeque<Option<V>>` indexed by `id - base`
//! gives O(1) access with no hashing, and — once the deque has grown to
//! the steady-state window width — no allocation at all.
//!
//! [`Slab`] is the classic free-list arena for values without natural ids;
//! callers hold `u32` handles instead of boxes.

use std::collections::VecDeque;

/// A map from monotonically increasing `u64` ids to values, backed by a
/// sliding deque window. Insertions may be in any order, but ids are
/// expected to trend upward; the window spans the oldest live id to the
/// newest ever inserted, so keep it bounded by removing finished entries.
#[derive(Debug, Clone)]
pub struct IdWindow<V> {
    base: u64,
    slots: VecDeque<Option<V>>,
    len: usize,
}

impl<V> Default for IdWindow<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> IdWindow<V> {
    /// An empty window.
    pub fn new() -> Self {
        IdWindow {
            base: 0,
            slots: VecDeque::new(),
            len: 0,
        }
    }

    /// Number of live entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no entry is live.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert `value` under `id`, returning the previous value if any.
    pub fn insert(&mut self, id: u64, value: V) -> Option<V> {
        if self.slots.is_empty() {
            self.base = id;
        } else if id < self.base {
            // Rare: an id below the window (e.g. attrs set for a daemon
            // pid after user pids exist). Grow the window downward.
            for _ in id..self.base {
                self.slots.push_front(None);
            }
            self.base = id;
        }
        let idx = (id - self.base) as usize;
        while self.slots.len() <= idx {
            self.slots.push_back(None);
        }
        let prev = self.slots[idx].replace(value);
        if prev.is_none() {
            self.len += 1;
        }
        prev
    }

    #[inline]
    fn idx(&self, id: u64) -> Option<usize> {
        if id < self.base {
            return None;
        }
        let idx = (id - self.base) as usize;
        (idx < self.slots.len()).then_some(idx)
    }

    /// Shared access.
    #[inline]
    pub fn get(&self, id: u64) -> Option<&V> {
        self.idx(id).and_then(|i| self.slots[i].as_ref())
    }

    /// Exclusive access.
    #[inline]
    pub fn get_mut(&mut self, id: u64) -> Option<&mut V> {
        self.idx(id).and_then(|i| self.slots[i].as_mut())
    }

    /// Whether `id` is live.
    #[inline]
    pub fn contains(&self, id: u64) -> bool {
        self.get(id).is_some()
    }

    /// Remove and return the value under `id`. Trailing/leading empty
    /// slots are trimmed from the front so the window tracks the oldest
    /// live id (keeping memory bounded without reallocating).
    pub fn remove(&mut self, id: u64) -> Option<V> {
        let idx = self.idx(id)?;
        let v = self.slots[idx].take();
        if v.is_some() {
            self.len -= 1;
            // Advance the window past leading holes. Capacity is kept, so
            // a steady-state insert/remove cycle never allocates.
            while let Some(None) = self.slots.front() {
                self.slots.pop_front();
                self.base += 1;
            }
            if self.slots.is_empty() {
                self.base = 0;
            }
        }
        v
    }

    /// Iterate `(id, &value)` over live entries in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V)> + '_ {
        let base = self.base;
        self.slots
            .iter()
            .enumerate()
            .filter_map(move |(i, s)| s.as_ref().map(|v| (base + i as u64, v)))
    }

    /// Iterate `(id, &mut value)` over live entries in ascending id order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (u64, &mut V)> + '_ {
        let base = self.base;
        self.slots
            .iter_mut()
            .enumerate()
            .filter_map(move |(i, s)| s.as_mut().map(|v| (base + i as u64, v)))
    }

    /// Iterate over live values in ascending id order.
    pub fn values(&self) -> impl Iterator<Item = &V> + '_ {
        self.slots.iter().filter_map(|s| s.as_ref())
    }

    /// Iterate over live values (mutably) in ascending id order.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut V> + '_ {
        self.slots.iter_mut().filter_map(|s| s.as_mut())
    }

    /// Drop every entry (window capacity is kept).
    pub fn clear(&mut self) {
        self.slots.clear();
        self.base = 0;
        self.len = 0;
    }
}

/// Free-list arena: values live in a `Vec`, callers hold `u32` handles.
/// Freed slots are recycled, so a steady-state alloc/free cycle touches no
/// allocator once the arena has reached its high-water mark.
#[derive(Debug, Clone, Default)]
pub struct Slab<T> {
    slots: Vec<Option<T>>,
    free: Vec<u32>,
    len: usize,
}

impl<T> Slab<T> {
    /// An empty slab.
    pub fn new() -> Self {
        Slab {
            slots: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Number of live values.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no value is live.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Store `value`, returning its handle.
    pub fn insert(&mut self, value: T) -> u32 {
        self.len += 1;
        match self.free.pop() {
            Some(i) => {
                self.slots[i as usize] = Some(value);
                i
            }
            None => {
                self.slots.push(Some(value));
                (self.slots.len() - 1) as u32
            }
        }
    }

    /// Shared access by handle.
    #[inline]
    pub fn get(&self, handle: u32) -> Option<&T> {
        self.slots.get(handle as usize).and_then(|s| s.as_ref())
    }

    /// Exclusive access by handle.
    #[inline]
    pub fn get_mut(&mut self, handle: u32) -> Option<&mut T> {
        self.slots.get_mut(handle as usize).and_then(|s| s.as_mut())
    }

    /// Remove the value behind `handle`, recycling its slot.
    pub fn remove(&mut self, handle: u32) -> Option<T> {
        let v = self.slots.get_mut(handle as usize).and_then(|s| s.take());
        if v.is_some() {
            self.len -= 1;
            self.free.push(handle);
        }
        v
    }

    /// Iterate `(handle, &value)` over live values in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &T)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|v| (i as u32, v)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_window_basic_roundtrip() {
        let mut w: IdWindow<&str> = IdWindow::new();
        assert!(w.is_empty());
        w.insert(10, "a");
        w.insert(11, "b");
        w.insert(13, "d");
        assert_eq!(w.len(), 3);
        assert_eq!(w.get(10), Some(&"a"));
        assert_eq!(w.get(12), None);
        assert!(w.contains(13));
        assert_eq!(w.remove(11), Some("b"));
        assert_eq!(w.remove(11), None);
        assert_eq!(w.len(), 2);
        let ids: Vec<u64> = w.iter().map(|(i, _)| i).collect();
        assert_eq!(ids, vec![10, 13]);
    }

    #[test]
    fn id_window_advances_base_past_holes() {
        let mut w: IdWindow<u64> = IdWindow::new();
        for i in 0..100 {
            w.insert(i, i);
        }
        for i in 0..99 {
            w.remove(i);
        }
        assert_eq!(w.len(), 1);
        // The window should have slid forward; re-inserting old ids still
        // works (grows downward).
        w.insert(42, 42);
        assert_eq!(w.get(42), Some(&42));
        assert_eq!(w.get(99), Some(&99));
    }

    #[test]
    fn id_window_steady_state_reuses_capacity() {
        let mut w: IdWindow<u64> = IdWindow::new();
        // Simulate a bounded in-flight window: insert k, remove k-8.
        for i in 0..1000u64 {
            w.insert(i, i);
            if i >= 8 {
                assert_eq!(w.remove(i - 8), Some(i - 8));
            }
        }
        assert_eq!(w.len(), 8);
        let live: Vec<u64> = w.iter().map(|(i, _)| i).collect();
        assert_eq!(live, (992..1000).collect::<Vec<_>>());
    }

    #[test]
    fn id_window_below_base_insert() {
        let mut w: IdWindow<&str> = IdWindow::new();
        w.insert(10, "user");
        w.insert(1, "journal");
        assert_eq!(w.get(1), Some(&"journal"));
        assert_eq!(w.get(10), Some(&"user"));
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn id_window_overwrite_returns_previous() {
        let mut w: IdWindow<&str> = IdWindow::new();
        assert_eq!(w.insert(5, "a"), None);
        assert_eq!(w.insert(5, "b"), Some("a"));
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn slab_recycles_slots() {
        let mut s: Slab<String> = Slab::new();
        let a = s.insert("a".into());
        let b = s.insert("b".into());
        assert_eq!(s.len(), 2);
        assert_eq!(s.remove(a), Some("a".into()));
        let c = s.insert("c".into());
        assert_eq!(c, a, "freed slot is reused");
        assert_eq!(s.get(b).map(|v| v.as_str()), Some("b"));
        assert_eq!(s.get(c).map(|v| v.as_str()), Some("c"));
    }
}
