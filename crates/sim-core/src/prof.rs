//! `sim-prof`: a host-side self-profiler for the simulator's own hot
//! path.
//!
//! The simulator's *output* is a pure function of config and seed; the
//! time it takes to produce that output is not, and ROADMAP item 1 (the
//! event-core rebuild) needs that wall-clock cost attributed to DES
//! phases before it can be argued down. This module provides the
//! attribution: a [`Profiler`] handle that the event queue and the
//! kernel hot paths consult, charging wall-clock nanoseconds and call
//! counts to a small fixed set of [`Phase`]s, plus high-watermark /
//! occupancy gauges for the event queue and the blk-mq staging area.
//!
//! Contract, matching the fault/audit/chaos planes: the profiler is
//! optional (`Option<Profiler>` at every hook site) and costs one branch
//! when absent. It is a pure *side channel* — it reads wall-clock time
//! but never feeds anything back into simulation state, so simulated
//! output is byte-identical whether the plane is installed, enabled, or
//! missing. This is the one sanctioned use of wall-clock time in
//! `sim-core`; the determinism contract in the crate docs is about
//! simulation *results*, which the profiler cannot touch.
//!
//! Handles are `Rc`-shared (one simulation runs on one thread, like the
//! [`Tracer`]-style planes above this crate). Installation is by thread:
//! [`install_thread`] parks a handle in a thread-local that
//! `World::new`/`Kernel::new` consult, so experiment entry points that
//! build their worlds internally (`run_cell`, the bench panel) can be
//! profiled without threading a handle through every figure config.

use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::time::Instant;

/// A DES phase that wall-clock time is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Event-queue heap push ([`crate::EventQueue::schedule`]).
    EventPush,
    /// Event-queue heap pop ([`crate::EventQueue::pop`]).
    EventPop,
    /// Scheduler decisions (every `IoSched` call made through the
    /// kernel's scheduler shim).
    Sched,
    /// Page-cache bookkeeping (dirtying pages, miss computation).
    Cache,
    /// Writeback passes (background and scheduler-commanded).
    Writeback,
    /// Journal / filesystem protocol steps (commit timer, fsync entry).
    Journal,
    /// The blk-mq dispatch pump (software queues → hardware slots).
    MqPump,
}

impl Phase {
    /// Every phase, in display order.
    pub const ALL: [Phase; 7] = [
        Phase::EventPush,
        Phase::EventPop,
        Phase::Sched,
        Phase::Cache,
        Phase::Writeback,
        Phase::Journal,
        Phase::MqPump,
    ];

    /// Stable snake_case name (JSON keys, registry counter names).
    pub fn name(self) -> &'static str {
        match self {
            Phase::EventPush => "event_push",
            Phase::EventPop => "event_pop",
            Phase::Sched => "sched",
            Phase::Cache => "cache",
            Phase::Writeback => "writeback",
            Phase::Journal => "journal",
            Phase::MqPump => "mq_pump",
        }
    }

    #[inline]
    fn idx(self) -> usize {
        self as usize
    }
}

const NPHASES: usize = Phase::ALL.len();

struct Inner {
    enabled: Cell<bool>,
    calls: [Cell<u64>; NPHASES],
    nanos: [Cell<u64>; NPHASES],
    depth_max: Cell<u64>,
    depth_sum: Cell<u64>,
    depth_samples: Cell<u64>,
    mq_staged_max: Cell<u64>,
    mq_inflight_max: Cell<u64>,
}

impl Default for Inner {
    fn default() -> Self {
        Inner {
            enabled: Cell::new(false),
            calls: std::array::from_fn(|_| Cell::new(0)),
            nanos: std::array::from_fn(|_| Cell::new(0)),
            depth_max: Cell::new(0),
            depth_sum: Cell::new(0),
            depth_samples: Cell::new(0),
            mq_staged_max: Cell::new(0),
            mq_inflight_max: Cell::new(0),
        }
    }
}

/// Shared profiler handle; clones observe the same accumulators.
/// Disabled by default — a disabled handle records nothing and costs
/// one branch per hook.
#[derive(Clone, Default)]
pub struct Profiler {
    inner: Rc<Inner>,
}

impl Profiler {
    /// A fresh, disabled profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Turn recording on or off.
    pub fn set_enabled(&self, on: bool) {
        self.inner.enabled.set(on);
    }

    /// Whether recording is on.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.enabled.get()
    }

    /// Start timing a phase; `None` when disabled (and then
    /// [`Profiler::record`] is never reached).
    #[inline]
    pub fn start(&self) -> Option<Instant> {
        if self.inner.enabled.get() {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Charge the time since `t0` (from [`Profiler::start`]) to `phase`.
    #[inline]
    pub fn record(&self, phase: Phase, t0: Instant) {
        let i = phase.idx();
        let c = &self.inner.calls[i];
        c.set(c.get().saturating_add(1));
        let n = &self.inner.nanos[i];
        n.set(n.get().saturating_add(t0.elapsed().as_nanos() as u64));
    }

    /// Record an event-queue depth observation (post-push / post-pop).
    #[inline]
    pub fn sample_depth(&self, len: usize) {
        if !self.inner.enabled.get() {
            return;
        }
        let len = len as u64;
        if len > self.inner.depth_max.get() {
            self.inner.depth_max.set(len);
        }
        let s = &self.inner.depth_sum;
        s.set(s.get().saturating_add(len));
        let n = &self.inner.depth_samples;
        n.set(n.get().saturating_add(1));
    }

    /// Record blk-mq occupancy (staged requests, hardware in-flight) at
    /// a dispatch-pump pass; keeps the high watermarks.
    #[inline]
    pub fn sample_mq(&self, staged: usize, in_flight: usize) {
        if !self.inner.enabled.get() {
            return;
        }
        if staged as u64 > self.inner.mq_staged_max.get() {
            self.inner.mq_staged_max.set(staged as u64);
        }
        if in_flight as u64 > self.inner.mq_inflight_max.get() {
            self.inner.mq_inflight_max.set(in_flight as u64);
        }
    }

    /// Zero every accumulator (the enabled flag is untouched). The bench
    /// harness resets between repetitions so each sample is independent.
    pub fn reset(&self) {
        for c in &self.inner.calls {
            c.set(0);
        }
        for n in &self.inner.nanos {
            n.set(0);
        }
        self.inner.depth_max.set(0);
        self.inner.depth_sum.set(0);
        self.inner.depth_samples.set(0);
        self.inner.mq_staged_max.set(0);
        self.inner.mq_inflight_max.set(0);
    }

    /// Copy out the current accumulators.
    pub fn snapshot(&self) -> ProfSnapshot {
        let phases = Phase::ALL
            .iter()
            .map(|&p| PhaseStat {
                phase: p,
                calls: self.inner.calls[p.idx()].get(),
                nanos: self.inner.nanos[p.idx()].get(),
            })
            .collect();
        let samples = self.inner.depth_samples.get();
        ProfSnapshot {
            phases,
            depth_max: self.inner.depth_max.get(),
            depth_mean: if samples == 0 {
                0.0
            } else {
                self.inner.depth_sum.get() as f64 / samples as f64
            },
            mq_staged_max: self.inner.mq_staged_max.get(),
            mq_inflight_max: self.inner.mq_inflight_max.get(),
        }
    }
}

/// One phase's accumulated cost.
#[derive(Debug, Clone, Copy)]
pub struct PhaseStat {
    /// The phase.
    pub phase: Phase,
    /// Times the phase ran.
    pub calls: u64,
    /// Wall-clock nanoseconds charged.
    pub nanos: u64,
}

impl PhaseStat {
    /// Mean nanoseconds per call; zero when never called.
    pub fn mean_nanos(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.nanos as f64 / self.calls as f64
        }
    }
}

/// A point-in-time copy of a profiler's accumulators.
#[derive(Debug, Clone)]
pub struct ProfSnapshot {
    /// Per-phase stats in [`Phase::ALL`] order (zeros included).
    pub phases: Vec<PhaseStat>,
    /// Largest event-queue depth observed.
    pub depth_max: u64,
    /// Mean event-queue depth over all push/pop observations.
    pub depth_mean: f64,
    /// Largest blk-mq software-queue staging observed.
    pub mq_staged_max: u64,
    /// Largest blk-mq hardware in-flight count observed.
    pub mq_inflight_max: u64,
}

impl ProfSnapshot {
    /// Total wall-clock nanoseconds attributed across all phases.
    pub fn total_nanos(&self) -> u64 {
        self.phases.iter().map(|p| p.nanos).sum()
    }
}

/// Time a phase behind an `Option<Profiler>` hook; `None` (no plane or
/// disabled) costs one branch.
#[inline]
pub fn tick(p: &Option<Profiler>) -> Option<Instant> {
    match p {
        Some(p) => p.start(),
        None => None,
    }
}

/// Close a [`tick`]; a `None` start (plane off) is a no-op.
#[inline]
pub fn tock(p: &Option<Profiler>, phase: Phase, t0: Option<Instant>) {
    if let (Some(p), Some(t0)) = (p, t0) {
        p.record(phase, t0);
    }
}

thread_local! {
    static CURRENT: RefCell<Option<Profiler>> = const { RefCell::new(None) };
}

/// Park a profiler handle for this thread; worlds and kernels built
/// afterwards on the same thread attach to it.
pub fn install_thread(p: &Profiler) {
    CURRENT.with(|c| *c.borrow_mut() = Some(p.clone()));
}

/// Remove this thread's parked profiler, if any.
pub fn uninstall_thread() {
    CURRENT.with(|c| *c.borrow_mut() = None);
}

/// This thread's parked profiler, if one is installed.
pub fn thread_profiler() -> Option<Profiler> {
    CURRENT.with(|c| c.borrow().clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_records_nothing() {
        let p = Profiler::new();
        assert!(p.start().is_none());
        p.sample_depth(10);
        p.sample_mq(3, 4);
        let s = p.snapshot();
        assert_eq!(s.total_nanos(), 0);
        assert_eq!(s.depth_max, 0);
        assert_eq!(s.mq_staged_max, 0);
        assert!(s.phases.iter().all(|ps| ps.calls == 0));
    }

    #[test]
    fn enabled_profiler_attributes_time_and_gauges() {
        let p = Profiler::new();
        p.set_enabled(true);
        let t0 = p.start().expect("enabled");
        p.record(Phase::Sched, t0);
        p.sample_depth(5);
        p.sample_depth(3);
        p.sample_mq(2, 7);
        let s = p.snapshot();
        let sched = s.phases.iter().find(|ps| ps.phase == Phase::Sched).unwrap();
        assert_eq!(sched.calls, 1);
        assert_eq!(s.depth_max, 5);
        assert!((s.depth_mean - 4.0).abs() < 1e-9);
        assert_eq!(s.mq_inflight_max, 7);
        assert!(sched.mean_nanos() >= 0.0);
    }

    #[test]
    fn clones_share_and_reset_clears() {
        let p = Profiler::new();
        p.set_enabled(true);
        let q = p.clone();
        if let Some(t0) = q.start() {
            q.record(Phase::Cache, t0);
        }
        assert_eq!(p.snapshot().phases[Phase::Cache as usize].calls, 1);
        p.reset();
        assert_eq!(p.snapshot().phases[Phase::Cache as usize].calls, 0);
        assert!(p.enabled(), "reset keeps the enabled flag");
    }

    #[test]
    fn thread_install_round_trips() {
        uninstall_thread();
        assert!(thread_profiler().is_none());
        let p = Profiler::new();
        install_thread(&p);
        assert!(thread_profiler().is_some());
        uninstall_thread();
        assert!(thread_profiler().is_none());
    }

    #[test]
    fn option_helpers_cost_nothing_when_absent() {
        let none: Option<Profiler> = None;
        let t0 = tick(&none);
        assert!(t0.is_none());
        tock(&none, Phase::EventPop, t0);
        let some = Some(Profiler::new()); // present but disabled
        assert!(tick(&some).is_none());
    }

    #[test]
    fn phase_names_are_stable() {
        let names: Vec<&str> = Phase::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            [
                "event_push",
                "event_pop",
                "sched",
                "cache",
                "writeback",
                "journal",
                "mq_pump"
            ]
        );
    }
}
