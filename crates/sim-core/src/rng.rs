//! Deterministic pseudo-randomness.
//!
//! A tiny xoshiro256++ implementation so the whole workspace shares one
//! splittable, seedable generator without pulling `rand` into every crate.
//! (`rand`/`proptest` are still used in tests and workload generators where
//! their distributions are convenient.)

/// A deterministic RNG (xoshiro256++). Never seeded from the environment.
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

#[inline]
fn rotl(x: u64, k: u32) -> u64 {
    x.rotate_left(k)
}

/// One round of splitmix64's output function.
#[inline]
fn splitmix(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Derive an independent stream seed from a `(root, stream)` pair.
///
/// The sweep engine gives every scenario its own RNG stream split from one
/// root seed: `stream_seed(root, cell)` keys a grid cell,
/// `stream_seed(stream_seed(root, cell), replicate)` keys one replicate of
/// it. Both inputs pass through splitmix64 before mixing, so nearby roots
/// or sequential stream ids (0, 1, 2, …) still land on unrelated streams.
/// The function is pure: the same pair always yields the same seed.
pub fn stream_seed(root: u64, stream: u64) -> u64 {
    splitmix(splitmix(root) ^ splitmix(stream ^ 0xA5A5_A5A5_A5A5_A5A5))
}

impl SimRng {
    /// Seed from a single u64 via splitmix64 expansion.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        SimRng { s }
    }

    /// Derive an independent child generator; used to give each process its
    /// own stream so adding a process does not perturb the others.
    pub fn split(&mut self) -> SimRng {
        SimRng::seed_from_u64(self.next_u64())
    }

    /// A generator on the stream `(root, stream)` — see [`stream_seed`].
    /// Unlike [`split`](Self::split), this is stateless: callers that know
    /// their stream id get the same generator no matter how many sibling
    /// streams were created before them.
    pub fn stream(root: u64, stream: u64) -> SimRng {
        SimRng::seed_from_u64(stream_seed(root, stream))
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = rotl(self.s[3], 45);
        result
    }

    /// Uniform integer in `[0, bound)`. `bound` of zero returns zero.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Lemire's multiply-shift rejection method.
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= (u64::MAX - bound + 1) % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Shuffle a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_range(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 3);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = SimRng::seed_from_u64(7);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX / 2] {
            for _ in 0..200 {
                assert!(r.gen_range(bound) < bound);
            }
        }
        assert_eq!(r.gen_range(0), 0);
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut r = SimRng::seed_from_u64(99);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[r.gen_range(10) as usize] += 1;
        }
        for &c in &counts {
            assert!(
                (8_000..12_000).contains(&c),
                "bucket count {c} out of range"
            );
        }
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut r = SimRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn split_streams_are_independent() {
        let mut parent = SimRng::seed_from_u64(3);
        let mut c1 = parent.split();
        let mut c2 = parent.split();
        let same = (0..100).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert!(same < 3);
    }

    #[test]
    fn stream_seed_is_pure_and_decorrelated() {
        // Pure: same pair, same seed.
        assert_eq!(stream_seed(7, 3), stream_seed(7, 3));
        // Sequential stream ids from one root give unrelated streams.
        let mut a = SimRng::stream(42, 0);
        let mut b = SimRng::stream(42, 1);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 3);
        // Nearby roots with the same stream id also diverge.
        let mut c = SimRng::stream(42, 0);
        let mut d = SimRng::stream(43, 0);
        let same = (0..100).filter(|_| c.next_u64() == d.next_u64()).count();
        assert!(same < 3);
    }

    #[test]
    fn stream_seeds_do_not_collide_over_a_small_grid() {
        let mut seen = std::collections::HashSet::new();
        for root in 0..8u64 {
            for stream in 0..64u64 {
                assert!(seen.insert(stream_seed(root, stream)));
            }
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SimRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }
}
