//! Virtual time. The simulator clock is a monotonically increasing count of
//! nanoseconds since simulation start; nothing in the workspace ever reads
//! the wall clock.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; useful as an "infinite" deadline sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanosecond count.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Time as fractional seconds (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time as fractional milliseconds (for reporting only).
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration elapsed since `earlier`, saturating to zero if `earlier` is
    /// in the future.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration.
    #[inline]
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds; negative values clamp to zero.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 {
            SimDuration(0)
        } else {
            SimDuration((s * 1e9).round() as u64)
        }
    }

    /// Raw nanosecond count.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Duration as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration as fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Scale by a non-negative factor (used by the CPU contention model).
    #[inline]
    pub fn mul_f64(self, k: f64) -> SimDuration {
        debug_assert!(k >= 0.0, "durations cannot be scaled negatively");
        SimDuration((self.0 as f64 * k).round() as u64)
    }

    /// Integer division into `n` equal slices (rounding down, min 1 ns so
    /// progress is always made).
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn div(self, n: u64) -> SimDuration {
        SimDuration((self.0 / n.max(1)).max(1))
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0 + d.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, other: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::from_nanos(500);
        let d = SimDuration::from_nanos(250);
        assert_eq!((t + d).as_nanos(), 750);
        assert_eq!((t + d) - t, d);
        assert_eq!(t.since(t + d), SimDuration::ZERO);
    }

    #[test]
    fn unit_constructors() {
        assert_eq!(SimDuration::from_micros(1).as_nanos(), 1_000);
        assert_eq!(SimDuration::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_nanos(), 500_000_000);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn scaling() {
        let d = SimDuration::from_millis(10);
        assert_eq!(d.mul_f64(2.0).as_nanos(), 20_000_000);
        assert_eq!(d.div(4).as_nanos(), 2_500_000);
        assert_eq!(SimDuration::from_nanos(3).div(10).as_nanos(), 1);
    }
}
