//! A counting global allocator behind the `alloc-count` cargo feature.
//!
//! When the feature is on, every allocation in the process is counted
//! (calls, live bytes, peak live bytes) through relaxed atomics on top
//! of the system allocator; the bench harness reads the counters to put
//! "peak allocations" next to events/sec in `BENCH_*.json`. When the
//! feature is off — the default, and the only configuration tier-1
//! tests build — nothing is registered and [`snapshot`] reports zeros
//! with `enabled = false`, so callers need no `cfg` of their own.
//!
//! Counting changes nothing observable inside the simulation (it is a
//! host-side side channel like [`crate::prof`]), but it does slow every
//! allocation slightly, which is why it is a feature and not a runtime
//! flag: the hot path should not pay even a disabled-check for it.

/// Process-wide allocation counters at one instant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocSnapshot {
    /// Whether the `alloc-count` feature (and thus the counting
    /// allocator) is compiled in.
    pub enabled: bool,
    /// Total successful allocations since process start.
    pub allocs: u64,
    /// Total deallocations since process start.
    pub frees: u64,
    /// Bytes currently live.
    pub current_bytes: u64,
    /// Peak live bytes since process start (or the last
    /// [`reset_peak`]).
    pub peak_bytes: u64,
}

#[cfg(feature = "alloc-count")]
mod imp {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

    pub static ALLOCS: AtomicU64 = AtomicU64::new(0);
    pub static FREES: AtomicU64 = AtomicU64::new(0);
    pub static CURRENT: AtomicU64 = AtomicU64::new(0);
    pub static PEAK: AtomicU64 = AtomicU64::new(0);

    pub struct CountingAlloc;

    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            let p = unsafe { System.alloc(layout) };
            if !p.is_null() {
                ALLOCS.fetch_add(1, Relaxed);
                let live = CURRENT.fetch_add(layout.size() as u64, Relaxed) + layout.size() as u64;
                PEAK.fetch_max(live, Relaxed);
            }
            p
        }

        unsafe fn dealloc(&self, p: *mut u8, layout: Layout) {
            unsafe { System.dealloc(p, layout) };
            FREES.fetch_add(1, Relaxed);
            CURRENT.fetch_sub(layout.size() as u64, Relaxed);
        }
    }

    #[global_allocator]
    static GLOBAL: CountingAlloc = CountingAlloc;
}

/// Read the process-wide counters; all-zero with `enabled = false` when
/// the `alloc-count` feature is off.
pub fn snapshot() -> AllocSnapshot {
    #[cfg(feature = "alloc-count")]
    {
        use std::sync::atomic::Ordering::Relaxed;
        AllocSnapshot {
            enabled: true,
            allocs: imp::ALLOCS.load(Relaxed),
            frees: imp::FREES.load(Relaxed),
            current_bytes: imp::CURRENT.load(Relaxed),
            peak_bytes: imp::PEAK.load(Relaxed),
        }
    }
    #[cfg(not(feature = "alloc-count"))]
    AllocSnapshot::default()
}

/// Whether the counting allocator is compiled in.
pub fn enabled() -> bool {
    cfg!(feature = "alloc-count")
}

/// Rebase the peak to the currently-live bytes, so the next
/// [`snapshot`] reports the peak of the interval that follows (the
/// bench harness calls this between repetitions).
pub fn reset_peak() {
    #[cfg(feature = "alloc-count")]
    {
        use std::sync::atomic::Ordering::Relaxed;
        imp::PEAK.store(imp::CURRENT.load(Relaxed), Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_matches_feature_state() {
        let s = snapshot();
        assert_eq!(s.enabled, enabled());
        if !s.enabled {
            assert_eq!(s, AllocSnapshot::default());
        } else {
            // The test harness itself allocates; the counters must move.
            let before = snapshot();
            let v: Vec<u8> = Vec::with_capacity(1 << 16);
            let after = snapshot();
            assert!(after.allocs > before.allocs);
            drop(v);
        }
        reset_peak(); // must be callable in both configurations
    }
}
