//! Deterministic, fast hashing for simulator-internal maps.
//!
//! `std`'s default `RandomState` seeds SipHash per process, which is both
//! slow for the tiny integer keys the simulator uses (pids, file ids,
//! request ids, page numbers) and gratuitously nondeterministic: any code
//! path that iterates a map must sort anyway, so the random seed buys
//! nothing. [`FastMap`]/[`FastSet`] swap in an FxHash-style multiplicative
//! hasher — a single wrapping multiply per word — giving hot-path lookups
//! at a few cycles each and identical iteration order on every run, which
//! makes bugs reproducible under the fuzz/check harness.
//!
//! This is an *internal* hash: keys are trusted simulator state, never
//! adversarial input, so HashDoS resistance is irrelevant.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit multiplicative constant (from FxHash / Firefox), chosen for good
/// bit diffusion under wrapping multiplication.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// One-multiply-per-word hasher for small integer-like keys.
#[derive(Debug, Clone, Copy, Default)]
pub struct FastHasher {
    state: u64,
}

impl FastHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// `BuildHasher` for [`FastHasher`].
pub type FastBuildHasher = BuildHasherDefault<FastHasher>;

/// Drop-in `HashMap` with the deterministic fast hasher.
pub type FastMap<K, V> = HashMap<K, V, FastBuildHasher>;

/// Drop-in `HashSet` with the deterministic fast hasher.
pub type FastSet<T> = HashSet<T, FastBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = FastHasher::default();
        let mut b = FastHasher::default();
        a.write_u64(0xdead_beef);
        b.write_u64(0xdead_beef);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn distinguishes_nearby_keys() {
        let hash = |n: u64| {
            let mut h = FastHasher::default();
            h.write_u64(n);
            h.finish()
        };
        // Sequential ids (the common key shape) must not collide in the
        // low bits HashMap actually uses.
        let mut low7 = std::collections::HashSet::new();
        for i in 0..128u64 {
            low7.insert(hash(i) & 0x7f);
        }
        assert!(
            low7.len() > 96,
            "low-bit diffusion too weak: {}",
            low7.len()
        );
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FastMap<u64, &str> = FastMap::default();
        m.insert(1, "a");
        m.insert(2, "b");
        assert_eq!(m.get(&1), Some(&"a"));
        let mut s: FastSet<u32> = FastSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
    }

    #[test]
    fn byte_stream_matches_word_writes_only_for_same_chunks() {
        // write() on 8-byte chunks equals write_u64 of the same word.
        let mut a = FastHasher::default();
        a.write(&42u64.to_le_bytes());
        let mut b = FastHasher::default();
        b.write_u64(42);
        assert_eq!(a.finish(), b.finish());
    }
}
