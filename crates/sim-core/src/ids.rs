//! Strongly-typed identifiers used across the stack.
//!
//! Each wraps a plain integer; the newtypes exist so a block number can
//! never be confused with a file id or a pid at a call site.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $inner:ty) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub $inner);

        impl $name {
            /// Raw integer value.
            #[inline]
            pub const fn raw(self) -> $inner {
                self.0
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.0)
            }
        }
    };
}

id_type!(
    /// A process (or kernel task) identifier. Kernel helper tasks such as
    /// the writeback and journal threads have pids of their own, exactly as
    /// in Linux — that is what makes write delegation visible.
    Pid,
    u32
);

id_type!(
    /// An open file / inode identifier within one kernel instance.
    FileId,
    u64
);

id_type!(
    /// A logical block number on the simulated disk (4 KB granularity).
    BlockNo,
    u64
);

id_type!(
    /// A block-layer request identifier.
    RequestId,
    u64
);

id_type!(
    /// A journal transaction identifier.
    TxnId,
    u64
);

id_type!(
    /// Identifies one kernel instance when a simulation world contains
    /// several machines (e.g. the HDFS cluster or a VM guest + host).
    KernelId,
    u32
);

/// Monotonic id allocator; hands out 0, 1, 2, ...
#[derive(Debug, Clone, Default)]
pub struct IdAlloc {
    next: u64,
}

impl IdAlloc {
    /// Create an allocator starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate the next raw id.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        let v = self.next;
        self.next += 1;
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_distinct_types_with_raw_access() {
        let p = Pid(3);
        let b = BlockNo(3);
        assert_eq!(p.raw(), 3);
        assert_eq!(b.raw(), 3);
        assert_eq!(format!("{p:?}"), "Pid(3)");
        assert_eq!(format!("{b}"), "3");
    }

    #[test]
    fn id_alloc_is_monotonic() {
        let mut a = IdAlloc::new();
        assert_eq!(a.next(), 0);
        assert_eq!(a.next(), 1);
        assert_eq!(a.next(), 2);
    }
}
