#![warn(missing_docs)]
//! Foundation types for the split-level I/O scheduling simulator.
//!
//! This crate provides the deterministic substrate every other crate builds
//! on: a virtual clock ([`SimTime`]), a generic discrete-event queue
//! ([`EventQueue`]), strongly-typed identifiers ([`Pid`], [`FileId`],
//! [`BlockNo`], ...), a seeded random-number wrapper ([`SimRng`]) and small
//! statistics helpers used by the experiment harness.
//!
//! Everything here is deliberately free of real I/O and wall-clock time so
//! that a simulation run is a pure function of its configuration and seed.
//! The one sanctioned exception is the self-profiler ([`prof`]) and the
//! feature-gated counting allocator ([`alloc_count`]): both *read*
//! wall-clock time or allocator traffic as a host-side side channel but
//! never feed anything back into simulation state, so results stay a
//! pure function of config and seed with or without them.

pub mod alloc_count;
pub mod arena;
pub mod causes;
pub mod chaos;
pub mod error;
pub mod event;
pub mod hash;
pub mod ids;
pub mod prof;
pub mod rng;
pub mod stats;
pub mod time;

pub use arena::{IdWindow, Slab};
pub use causes::CauseSet;
pub use chaos::{ChaosClass, ChaosConfig, ChaosPlane, CompletionJitter};
pub use error::{IoError, IoErrorKind, IoResult};
pub use event::{EventQueue, ScheduledEvent};
pub use hash::{FastBuildHasher, FastMap, FastSet};
pub use ids::{BlockNo, FileId, IdAlloc, KernelId, Pid, RequestId, TxnId};
pub use prof::{Phase, ProfSnapshot, Profiler};
pub use rng::{stream_seed, SimRng};
pub use time::{SimDuration, SimTime};

/// Size of one page / filesystem block in bytes. The simulator uses a single
/// granularity for pages and blocks, matching ext4's common 4 KB setup.
pub const PAGE_SIZE: u64 = 4096;

/// Convert a byte count to the number of pages it occupies (rounding up).
#[inline]
pub fn pages_for_bytes(bytes: u64) -> u64 {
    bytes.div_ceil(PAGE_SIZE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pages_for_bytes_rounds_up() {
        assert_eq!(pages_for_bytes(0), 0);
        assert_eq!(pages_for_bytes(1), 1);
        assert_eq!(pages_for_bytes(PAGE_SIZE), 1);
        assert_eq!(pages_for_bytes(PAGE_SIZE + 1), 2);
        assert_eq!(pages_for_bytes(10 * PAGE_SIZE), 10);
    }
}
