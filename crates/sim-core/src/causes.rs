//! Cause sets — the cross-layer tags at the heart of split-level
//! scheduling (§3.1 of the paper).
//!
//! A `CauseSet` records *which processes are responsible* for a piece of
//! I/O work. Because metadata is shared and I/O is batched, a single dirty
//! buffer or block request may have several causes, so the tag is a set of
//! pids rather than a scalar. Proxy tasks (writeback, journal) carry a
//! cause set describing the processes they are working for; I/O they
//! produce inherits that set instead of the proxy's own pid.
//!
//! The representation is a small sorted vector: cause sets in practice hold
//! a handful of pids, and a sorted vec gives cheap union/containment with
//! good locality. The live-byte accounting used by the Figure 10
//! experiment counts `heap_bytes()` of every allocated tag.

use std::fmt;

use crate::ids::Pid;

/// A set of processes responsible for an I/O operation.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct CauseSet {
    // Sorted, deduplicated.
    pids: Vec<Pid>,
}

impl CauseSet {
    /// The empty set (no known cause).
    pub fn empty() -> Self {
        CauseSet::default()
    }

    /// A singleton set.
    pub fn of(pid: Pid) -> Self {
        CauseSet { pids: vec![pid] }
    }

    /// Build from arbitrary pids (deduplicated).
    pub fn from_pids<I: IntoIterator<Item = Pid>>(iter: I) -> Self {
        let mut pids: Vec<Pid> = iter.into_iter().collect();
        pids.sort_unstable();
        pids.dedup();
        CauseSet { pids }
    }

    /// Number of distinct causes.
    pub fn len(&self) -> usize {
        self.pids.len()
    }

    /// Whether no cause is recorded.
    pub fn is_empty(&self) -> bool {
        self.pids.is_empty()
    }

    /// Whether `pid` is one of the causes.
    pub fn contains(&self, pid: Pid) -> bool {
        self.pids.binary_search(&pid).is_ok()
    }

    /// Iterate over the causes in ascending pid order.
    pub fn iter(&self) -> impl Iterator<Item = Pid> + '_ {
        self.pids.iter().copied()
    }

    /// Add one cause.
    pub fn insert(&mut self, pid: Pid) {
        if let Err(at) = self.pids.binary_search(&pid) {
            self.pids.insert(at, pid);
        }
    }

    /// In-place union with another set.
    pub fn union_with(&mut self, other: &CauseSet) {
        if other.is_empty() {
            return;
        }
        if self.is_empty() {
            self.pids = other.pids.clone();
            return;
        }
        let mut merged = Vec::with_capacity(self.pids.len() + other.pids.len());
        let (mut i, mut j) = (0, 0);
        while i < self.pids.len() && j < other.pids.len() {
            match self.pids[i].cmp(&other.pids[j]) {
                std::cmp::Ordering::Less => {
                    merged.push(self.pids[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    merged.push(other.pids[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    merged.push(self.pids[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        merged.extend_from_slice(&self.pids[i..]);
        merged.extend_from_slice(&other.pids[j..]);
        self.pids = merged;
    }

    /// Union, by value.
    pub fn union(mut self, other: &CauseSet) -> CauseSet {
        self.union_with(other);
        self
    }

    /// Heap bytes consumed by this tag — what the paper's Figure 10
    /// instruments via kmalloc/kfree.
    pub fn heap_bytes(&self) -> usize {
        self.pids.capacity() * std::mem::size_of::<Pid>()
    }

    /// Split a unit of cost evenly among the causes; returns
    /// `(pid, share)` pairs. An empty set yields nothing.
    pub fn shares(&self, cost: f64) -> impl Iterator<Item = (Pid, f64)> + '_ {
        let n = self.pids.len().max(1) as f64;
        self.pids.iter().map(move |&p| (p, cost / n))
    }
}

impl fmt::Debug for CauseSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "causes{:?}",
            self.pids.iter().map(|p| p.0).collect::<Vec<_>>()
        )
    }
}

impl FromIterator<Pid> for CauseSet {
    fn from_iter<I: IntoIterator<Item = Pid>>(iter: I) -> Self {
        CauseSet::from_pids(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_singleton() {
        let e = CauseSet::empty();
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        let s = CauseSet::of(Pid(7));
        assert!(s.contains(Pid(7)));
        assert!(!s.contains(Pid(8)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn insert_keeps_sorted_dedup() {
        let mut s = CauseSet::empty();
        s.insert(Pid(5));
        s.insert(Pid(1));
        s.insert(Pid(5));
        s.insert(Pid(3));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![Pid(1), Pid(3), Pid(5)]);
    }

    #[test]
    fn union_merges_without_duplicates() {
        let a = CauseSet::from_pids([Pid(1), Pid(3), Pid(5)]);
        let b = CauseSet::from_pids([Pid(2), Pid(3), Pid(6)]);
        let u = a.union(&b);
        assert_eq!(
            u.iter().collect::<Vec<_>>(),
            vec![Pid(1), Pid(2), Pid(3), Pid(5), Pid(6)]
        );
    }

    #[test]
    fn union_with_empty_is_identity() {
        let a = CauseSet::from_pids([Pid(1), Pid(2)]);
        assert_eq!(a.clone().union(&CauseSet::empty()), a);
        assert_eq!(CauseSet::empty().union(&a), a);
    }

    #[test]
    fn shares_split_evenly() {
        let s = CauseSet::from_pids([Pid(1), Pid(2), Pid(4), Pid(8)]);
        let shares: Vec<_> = s.shares(8.0).collect();
        assert_eq!(shares.len(), 4);
        for (_, v) in shares {
            assert!((v - 2.0).abs() < 1e-12);
        }
        assert_eq!(CauseSet::empty().shares(8.0).count(), 0);
    }

    #[test]
    fn heap_bytes_tracks_capacity() {
        let s = CauseSet::from_pids([Pid(1), Pid(2), Pid(3)]);
        assert!(s.heap_bytes() >= 3 * std::mem::size_of::<Pid>());
        assert_eq!(CauseSet::empty().heap_bytes(), 0);
    }
}
