//! Cause sets — the cross-layer tags at the heart of split-level
//! scheduling (§3.1 of the paper).
//!
//! A `CauseSet` records *which processes are responsible* for a piece of
//! I/O work. Because metadata is shared and I/O is batched, a single dirty
//! buffer or block request may have several causes, so the tag is a set of
//! pids rather than a scalar. Proxy tasks (writeback, journal) carry a
//! cause set describing the processes they are working for; I/O they
//! produce inherits that set instead of the proxy's own pid.
//!
//! The representation is a small sorted set with *inline* storage: cause
//! sets in practice hold a handful of pids, and the common singleton
//! ({the writer}) and two-or-three-way shapes fit entirely in the struct,
//! so the simulator's hot paths — one tag per dirtied page, per block
//! request, per journal join — construct, clone and union tags without
//! touching the heap. Larger sets spill to a sorted `Vec`. The live-byte
//! accounting used by the Figure 10 experiment counts `heap_bytes()` of
//! every allocated tag: the modeled kmalloc cost of the pid array
//! (inline sets model `len * size_of::<Pid>()`, spilled sets report their
//! real vector capacity).

use std::fmt;
use std::hash::{Hash, Hasher};

use crate::ids::Pid;

/// Pids stored without heap allocation; covers the overwhelming majority
/// of tags (writer, writer+proxy-resolved peer, small entanglements).
const INLINE: usize = 3;

/// Sentinel for "the set lives in `spill`".
const SPILLED: u8 = u8::MAX;

/// A set of processes responsible for an I/O operation.
#[derive(Clone)]
pub struct CauseSet {
    // Sorted, deduplicated — either `inline[..ilen]` or, when
    // `ilen == SPILLED`, the `spill` vector.
    ilen: u8,
    inline: [Pid; INLINE],
    spill: Vec<Pid>,
}

impl Default for CauseSet {
    fn default() -> Self {
        CauseSet {
            ilen: 0,
            inline: [Pid(0); INLINE],
            spill: Vec::new(),
        }
    }
}

impl CauseSet {
    /// The empty set (no known cause).
    pub fn empty() -> Self {
        CauseSet::default()
    }

    /// A singleton set. Never allocates.
    #[inline]
    pub fn of(pid: Pid) -> Self {
        let mut s = CauseSet::default();
        s.inline[0] = pid;
        s.ilen = 1;
        s
    }

    /// Build from arbitrary pids (deduplicated).
    pub fn from_pids<I: IntoIterator<Item = Pid>>(iter: I) -> Self {
        let mut pids: Vec<Pid> = iter.into_iter().collect();
        pids.sort_unstable();
        pids.dedup();
        Self::from_sorted_vec(pids)
    }

    /// Take ownership of an already sorted + deduplicated vector.
    fn from_sorted_vec(pids: Vec<Pid>) -> Self {
        if pids.len() <= INLINE {
            let mut s = CauseSet::default();
            s.inline[..pids.len()].copy_from_slice(&pids);
            s.ilen = pids.len() as u8;
            s
        } else {
            CauseSet {
                ilen: SPILLED,
                inline: [Pid(0); INLINE],
                spill: pids,
            }
        }
    }

    /// The pids, sorted ascending.
    #[inline]
    pub fn as_slice(&self) -> &[Pid] {
        if self.ilen == SPILLED {
            &self.spill
        } else {
            &self.inline[..self.ilen as usize]
        }
    }

    /// Number of distinct causes.
    #[inline]
    pub fn len(&self) -> usize {
        if self.ilen == SPILLED {
            self.spill.len()
        } else {
            self.ilen as usize
        }
    }

    /// Whether no cause is recorded.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether `pid` is one of the causes.
    #[inline]
    pub fn contains(&self, pid: Pid) -> bool {
        self.as_slice().binary_search(&pid).is_ok()
    }

    /// Iterate over the causes in ascending pid order.
    pub fn iter(&self) -> impl Iterator<Item = Pid> + '_ {
        self.as_slice().iter().copied()
    }

    /// Add one cause.
    pub fn insert(&mut self, pid: Pid) {
        if self.ilen == SPILLED {
            if let Err(at) = self.spill.binary_search(&pid) {
                self.spill.insert(at, pid);
            }
            return;
        }
        let n = self.ilen as usize;
        match self.inline[..n].binary_search(&pid) {
            Ok(_) => {}
            Err(at) if n < INLINE => {
                self.inline.copy_within(at..n, at + 1);
                self.inline[at] = pid;
                self.ilen += 1;
            }
            Err(at) => {
                // Overflow: spill to a vector.
                let mut v = Vec::with_capacity(INLINE + 1);
                v.extend_from_slice(&self.inline[..at]);
                v.push(pid);
                v.extend_from_slice(&self.inline[at..n]);
                self.spill = v;
                self.ilen = SPILLED;
            }
        }
    }

    /// Whether every pid of `other` is already in `self`.
    fn is_superset_of(&self, other: &CauseSet) -> bool {
        let a = self.as_slice();
        let b = other.as_slice();
        if b.len() > a.len() {
            return false;
        }
        // Both sorted: single merge scan.
        let mut i = 0;
        for &p in b {
            while i < a.len() && a[i] < p {
                i += 1;
            }
            if i >= a.len() || a[i] != p {
                return false;
            }
        }
        true
    }

    /// In-place union with another set. Allocation-free whenever `other`
    /// is already contained in `self` (the common re-dirty / re-join
    /// case) or the merged set still fits inline.
    pub fn union_with(&mut self, other: &CauseSet) {
        if other.is_empty() || self.is_superset_of(other) {
            return;
        }
        if self.is_empty() {
            *self = other.clone();
            return;
        }
        let a = self.as_slice();
        let b = other.as_slice();
        if a.len() + b.len() <= 2 * INLINE {
            // Small merge: build on the stack, then store.
            let mut buf = [Pid(0); 2 * INLINE];
            let n = merge_into(a, b, &mut buf);
            if n <= INLINE {
                self.inline[..n].copy_from_slice(&buf[..n]);
                self.ilen = n as u8;
                self.spill = Vec::new();
            } else {
                let mut v = Vec::with_capacity(a.len() + b.len());
                v.extend_from_slice(&buf[..n]);
                self.spill = v;
                self.ilen = SPILLED;
            }
            return;
        }
        let mut merged = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => {
                    merged.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    merged.push(b[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    merged.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        merged.extend_from_slice(&a[i..]);
        merged.extend_from_slice(&b[j..]);
        self.spill = merged;
        self.ilen = SPILLED;
    }

    /// Union, by value.
    pub fn union(mut self, other: &CauseSet) -> CauseSet {
        self.union_with(other);
        self
    }

    /// Heap bytes consumed by this tag — what the paper's Figure 10
    /// instruments via kmalloc/kfree. Inline sets model the kmalloc a
    /// kernel implementation would make for the pid array
    /// (`len * size_of::<Pid>()`); spilled sets report their vector's
    /// actual capacity.
    pub fn heap_bytes(&self) -> usize {
        if self.ilen == SPILLED {
            self.spill.capacity() * std::mem::size_of::<Pid>()
        } else {
            self.ilen as usize * std::mem::size_of::<Pid>()
        }
    }

    /// Split a unit of cost evenly among the causes; returns
    /// `(pid, share)` pairs. An empty set yields nothing.
    pub fn shares(&self, cost: f64) -> impl Iterator<Item = (Pid, f64)> + '_ {
        let s = self.as_slice();
        let n = s.len().max(1) as f64;
        s.iter().map(move |&p| (p, cost / n))
    }
}

/// Merge two sorted, deduplicated slices into `out`; returns the merged
/// length. `out` must have room for `a.len() + b.len()`.
fn merge_into(a: &[Pid], b: &[Pid], out: &mut [Pid]) -> usize {
    let (mut i, mut j, mut k) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out[k] = a[i];
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out[k] = b[j];
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out[k] = a[i];
                i += 1;
                j += 1;
            }
        }
        k += 1;
    }
    while i < a.len() {
        out[k] = a[i];
        i += 1;
        k += 1;
    }
    while j < b.len() {
        out[k] = b[j];
        j += 1;
        k += 1;
    }
    k
}

impl PartialEq for CauseSet {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for CauseSet {}

impl Hash for CauseSet {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for CauseSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "causes{:?}",
            self.iter().map(|p| p.0).collect::<Vec<_>>()
        )
    }
}

impl FromIterator<Pid> for CauseSet {
    fn from_iter<I: IntoIterator<Item = Pid>>(iter: I) -> Self {
        CauseSet::from_pids(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_singleton() {
        let e = CauseSet::empty();
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        let s = CauseSet::of(Pid(7));
        assert!(s.contains(Pid(7)));
        assert!(!s.contains(Pid(8)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn insert_keeps_sorted_dedup() {
        let mut s = CauseSet::empty();
        s.insert(Pid(5));
        s.insert(Pid(1));
        s.insert(Pid(5));
        s.insert(Pid(3));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![Pid(1), Pid(3), Pid(5)]);
    }

    #[test]
    fn insert_spills_past_inline_capacity_and_back_compares_equal() {
        let mut s = CauseSet::empty();
        for p in [9u32, 2, 7, 4, 1, 8, 3] {
            s.insert(Pid(p));
        }
        assert_eq!(
            s.iter().map(|p| p.0).collect::<Vec<_>>(),
            vec![1, 2, 3, 4, 7, 8, 9]
        );
        assert_eq!(s, CauseSet::from_pids([1, 2, 3, 4, 7, 8, 9].map(Pid)));
    }

    #[test]
    fn union_merges_without_duplicates() {
        let a = CauseSet::from_pids([Pid(1), Pid(3), Pid(5)]);
        let b = CauseSet::from_pids([Pid(2), Pid(3), Pid(6)]);
        let u = a.union(&b);
        assert_eq!(
            u.iter().collect::<Vec<_>>(),
            vec![Pid(1), Pid(2), Pid(3), Pid(5), Pid(6)]
        );
    }

    #[test]
    fn union_with_empty_is_identity() {
        let a = CauseSet::from_pids([Pid(1), Pid(2)]);
        assert_eq!(a.clone().union(&CauseSet::empty()), a);
        assert_eq!(CauseSet::empty().union(&a), a);
    }

    #[test]
    fn union_with_subset_is_identity_without_reallocation() {
        let mut a = CauseSet::from_pids([Pid(1), Pid(2), Pid(3)]);
        let before = a.heap_bytes();
        a.union_with(&CauseSet::of(Pid(2)));
        assert_eq!(a.len(), 3);
        assert_eq!(a.heap_bytes(), before);
    }

    #[test]
    fn union_across_inline_spill_boundary() {
        // 2 + 2 distinct = 4 > INLINE: must spill correctly.
        let a = CauseSet::from_pids([Pid(1), Pid(3)]);
        let b = CauseSet::from_pids([Pid(2), Pid(4)]);
        let u = a.union(&b);
        assert_eq!(u.len(), 4);
        assert_eq!(u.iter().map(|p| p.0).collect::<Vec<_>>(), vec![1, 2, 3, 4]);
        // Spilled ∪ inline and inline ∪ spilled agree.
        let big = CauseSet::from_pids((10..20).map(Pid));
        let small = CauseSet::of(Pid(1));
        assert_eq!(big.clone().union(&small), small.clone().union(&big),);
    }

    #[test]
    fn shares_split_evenly() {
        let s = CauseSet::from_pids([Pid(1), Pid(2), Pid(4), Pid(8)]);
        let shares: Vec<_> = s.shares(8.0).collect();
        assert_eq!(shares.len(), 4);
        for (_, v) in shares {
            assert!((v - 2.0).abs() < 1e-12);
        }
        assert_eq!(CauseSet::empty().shares(8.0).count(), 0);
    }

    #[test]
    fn heap_bytes_tracks_capacity() {
        let s = CauseSet::from_pids([Pid(1), Pid(2), Pid(3)]);
        assert!(s.heap_bytes() >= 3 * std::mem::size_of::<Pid>());
        assert_eq!(CauseSet::empty().heap_bytes(), 0);
        // Spilled sets report real vector capacity.
        let big = CauseSet::from_pids((0..10).map(Pid));
        assert!(big.heap_bytes() >= 10 * std::mem::size_of::<Pid>());
    }

    #[test]
    fn eq_and_hash_ignore_representation() {
        use std::collections::hash_map::DefaultHasher;
        let inline = CauseSet::from_pids([Pid(1), Pid(2)]);
        let mut spilled = CauseSet::from_pids((0..8).map(Pid));
        // Shrink the spilled set logically via union from an empty set.
        let mut rebuilt = CauseSet::empty();
        rebuilt.union_with(&inline);
        assert_eq!(inline, rebuilt);
        let h = |s: &CauseSet| {
            let mut h = DefaultHasher::new();
            s.hash(&mut h);
            h.finish()
        };
        assert_eq!(h(&inline), h(&rebuilt));
        spilled.insert(Pid(100));
        assert!(spilled.contains(Pid(100)));
    }
}
