//! The discrete-event queue at the heart of the simulator.
//!
//! Events are ordered by `(time, sequence)`; the sequence number makes
//! simultaneous events fire in insertion order, which keeps every run
//! bit-for-bit deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::prof::{self, Phase, Profiler};
use crate::time::SimTime;

/// An event scheduled for a future instant, carrying a caller-defined
/// payload `E` (the kernel crate uses an enum of everything that can
/// happen: device completions, timer expiries, process wake-ups, ...).
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub time: SimTime,
    /// Insertion sequence; ties on `time` fire in insertion order.
    pub seq: u64,
    /// The payload.
    pub payload: E,
}

struct HeapEntry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for HeapEntry<E> {}
impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for HeapEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we need earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic earliest-first event queue.
///
/// The queue also tracks the current simulation time: popping an event
/// advances the clock to that event's timestamp. Scheduling an event in the
/// past is a logic error and is clamped to `now` (with a debug assertion).
pub struct EventQueue<E> {
    heap: BinaryHeap<HeapEntry<E>>,
    now: SimTime,
    seq: u64,
    popped: u64,
    late: u64,
    /// Self-profiler plane; `None` (the default) keeps push/pop free of
    /// profiling branches beyond a single `Option` check.
    prof: Option<Profiler>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at t = 0.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            popped: 0,
            late: 0,
            prof: None,
        }
    }

    /// Install a self-profiler: heap pushes and pops are timed (phases
    /// [`Phase::EventPush`] / [`Phase::EventPop`]) and the queue depth
    /// is sampled after each. Profiling reads wall-clock time only; it
    /// never changes what the queue returns.
    pub fn set_profiler(&mut self, p: Profiler) {
        self.prof = Some(p);
    }

    /// Current simulated time (timestamp of the last popped event).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events waiting.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events processed so far.
    #[inline]
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// Times scheduled in the past so far (each was clamped to `now`).
    /// Always zero in a correct simulation; release builds expose the
    /// count so the invariant stays checkable where the debug assertion
    /// in [`EventQueue::schedule`] is compiled out.
    #[inline]
    pub fn late_schedules(&self) -> u64 {
        self.late
    }

    /// Schedule `payload` to fire at `time`. Times in the past are clamped
    /// to `now` so the simulation can never move backwards.
    pub fn schedule(&mut self, time: SimTime, payload: E) {
        if time < self.now {
            self.late += 1;
        }
        debug_assert!(
            time >= self.now,
            "scheduled an event in the past: {time:?} < {:?}",
            self.now
        );
        let time = time.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        let t0 = prof::tick(&self.prof);
        self.heap.push(HeapEntry { time, seq, payload });
        prof::tock(&self.prof, Phase::EventPush, t0);
        if let Some(p) = &self.prof {
            p.sample_depth(self.heap.len());
        }
    }

    /// Timestamp of the next event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        let t0 = prof::tick(&self.prof);
        let entry = self.heap.pop()?;
        prof::tock(&self.prof, Phase::EventPop, t0);
        if let Some(p) = &self.prof {
            p.sample_depth(self.heap.len());
        }
        self.now = entry.time;
        self.popped += 1;
        Some(ScheduledEvent {
            time: entry.time,
            seq: entry.seq,
            payload: entry.payload,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), "c");
        q.schedule(SimTime::from_nanos(10), "a");
        q.schedule(SimTime::from_nanos(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(q.now(), SimTime::from_nanos(30));
        assert_eq!(q.events_processed(), 3);
    }

    #[test]
    fn simultaneous_events_fire_in_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn profiler_observes_without_changing_order() {
        use crate::prof::{Phase, Profiler};
        let p = Profiler::new();
        p.set_enabled(true);
        let mut q = EventQueue::new();
        q.set_profiler(p.clone());
        q.schedule(SimTime::from_nanos(30), "c");
        q.schedule(SimTime::from_nanos(10), "a");
        q.schedule(SimTime::from_nanos(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!["a", "b", "c"], "profiling must not reorder");
        let s = p.snapshot();
        assert_eq!(s.phases[Phase::EventPush as usize].calls, 3);
        assert_eq!(s.phases[Phase::EventPop as usize].calls, 3);
        assert_eq!(s.depth_max, 3);
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(100), ());
        q.pop();
        // Scheduling "now" after time advanced is fine:
        q.schedule(q.now() + SimDuration::from_nanos(1), ());
        assert_eq!(q.pop().unwrap().time, SimTime::from_nanos(101));
    }
}
