//! The discrete-event queue at the heart of the simulator.
//!
//! Events are ordered by `(time, sequence)`; the sequence number makes
//! simultaneous events fire in insertion order, which keeps every run
//! bit-for-bit deterministic.
//!
//! # Implementation: calendar wheel + overflow heap
//!
//! The queue is a single-level calendar (timing) wheel of
//! [`NUM_SLOTS`] ring slots, each [`SLOT_NS`] nanoseconds wide, covering a
//! horizon of ~1.07 simulated seconds ahead of the clock — which holds
//! nearly every event a running simulation schedules (device completions,
//! process steps, writeback ticks). Events beyond the horizon go to a
//! small binary min-heap and migrate into the wheel as the clock
//! approaches them; events are never dropped or reordered by migration.
//!
//! Within a slot, entries are ordered by `(time, seq)` exactly as the old
//! `BinaryHeap` implementation ordered the whole queue: a slot is sorted
//! lazily the first time the cursor pops from it, and later insertions
//! into the *current* slot binary-search their position, so strict
//! FIFO-by-`seq` within a tick is preserved and the pop sequence is
//! byte-identical to a global `(time, seq)` heap (a property-tested
//! invariant, see `wheel_matches_reference_heap_on_fuzzed_schedules`).
//!
//! Pushes append to a `Vec` slot and pops scan a 1 Kbit occupancy bitmap,
//! so the steady state allocates nothing once slot vectors have reached
//! their high-water capacity.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::prof::{Phase, Profiler};
use crate::time::SimTime;

/// log2 of the slot width in nanoseconds: 2^17 ns ≈ 131 µs.
const SLOT_SHIFT: u32 = 17;
/// Number of wheel slots (must stay a power of two). With
/// [`SLOT_SHIFT`] = 17 the wheel horizon is 2^30 ns ≈ 1.07 s.
const NUM_SLOTS: usize = 1 << 13;
/// Words in the slot-occupancy bitmap.
const OCC_WORDS: usize = NUM_SLOTS / 64;

/// An event scheduled for a future instant, carrying a caller-defined
/// payload `E` (the kernel crate uses an enum of everything that can
/// happen: device completions, timer expiries, process wake-ups, ...).
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub time: SimTime,
    /// Insertion sequence; ties on `time` fire in insertion order.
    pub seq: u64,
    /// The payload.
    pub payload: E,
}

/// A wheel-slot entry (also the overflow-heap entry payload).
struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

/// Overflow-heap wrapper: reversed `(time, seq)` order makes
/// `BinaryHeap` (a max-heap) pop earliest-first.
struct OverflowEntry<E>(Entry<E>);

impl<E> PartialEq for OverflowEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.0.time == other.0.time && self.0.seq == other.0.seq
    }
}
impl<E> Eq for OverflowEntry<E> {}
impl<E> PartialOrd for OverflowEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for OverflowEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .0
            .time
            .cmp(&self.0.time)
            .then_with(|| other.0.seq.cmp(&self.0.seq))
    }
}

#[inline]
fn tick_of(t: SimTime) -> u64 {
    t.as_nanos() >> SLOT_SHIFT
}

/// A deterministic earliest-first event queue.
///
/// The queue also tracks the current simulation time: popping an event
/// advances the clock to that event's timestamp. Scheduling an event in the
/// past is a logic error and is clamped to `now` (with a debug assertion);
/// release builds count the violation in [`EventQueue::late_schedules`],
/// which the kernel's drain path and the check harness treat as fatal.
pub struct EventQueue<E> {
    /// Ring of calendar slots; slot `tick & (NUM_SLOTS-1)` holds events
    /// whose slot number is `tick`, for ticks within the current horizon
    /// window `[cursor_tick, cursor_tick + NUM_SLOTS)`.
    slots: Box<[Vec<Entry<E>>]>,
    /// One bit per slot: set iff the slot is non-empty.
    occ: [u64; OCC_WORDS],
    /// How many slots have been pre-sized (see `schedule_unchecked`).
    /// A cold slot's first-ever push would lazily allocate its entry
    /// buffer — a slow trickle (coupon-collector over the ring) that
    /// would break the zero-allocation steady state long after warmup.
    /// Pre-sizing all slots at construction instead would put ~8k
    /// allocations on every `new()`, swamping short-lived worlds (the
    /// check fuzzer builds thousands), so each push warms a few more
    /// slots until the whole ring is covered: long-lived queues go
    /// allocation-quiet within their first ~2k events, short-lived
    /// ones never pay for slots they don't reach.
    prepped: usize,
    /// Absolute slot number the pop cursor is at (slot of `now`, or of
    /// the next overflow event after a jump across an empty stretch).
    cursor_tick: u64,
    /// Whether the cursor slot's vector is sorted descending by
    /// `(time, seq)` (pops take from the back).
    cur_sorted: bool,
    /// Events currently stored in wheel slots.
    wheel_len: usize,
    /// Far-future events (≥ one horizon ahead of the cursor).
    overflow: BinaryHeap<OverflowEntry<E>>,
    now: SimTime,
    seq: u64,
    popped: u64,
    late: u64,
    /// Self-profiler plane; `None` (the default) keeps push/pop free of
    /// profiling branches beyond a single `Option` check.
    prof: Option<Profiler>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at t = 0.
    pub fn new() -> Self {
        EventQueue {
            slots: (0..NUM_SLOTS).map(|_| Vec::new()).collect(),
            occ: [0; OCC_WORDS],
            prepped: 0,
            cursor_tick: 0,
            cur_sorted: false,
            wheel_len: 0,
            overflow: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            popped: 0,
            late: 0,
            prof: None,
        }
    }

    /// Install a self-profiler: wheel pushes and pops are timed (phases
    /// [`Phase::EventPush`] / [`Phase::EventPop`]) and the queue depth
    /// is sampled after each. Profiling reads wall-clock time only; it
    /// never changes what the queue returns.
    pub fn set_profiler(&mut self, p: Profiler) {
        self.prof = Some(p);
    }

    /// Current simulated time (timestamp of the last popped event).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events waiting.
    #[inline]
    pub fn len(&self) -> usize {
        self.wheel_len + self.overflow.len()
    }

    /// Whether no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events processed so far.
    #[inline]
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// Times scheduled in the past so far (each was clamped to `now`).
    /// Always zero in a correct simulation; release builds expose the
    /// count so the invariant stays checkable where the debug assertion
    /// in [`EventQueue::schedule`] is compiled out. The kernel's
    /// quiescence path and the `sim-check` event-queue auditor fail a run
    /// in which this ever becomes nonzero.
    #[inline]
    pub fn late_schedules(&self) -> u64 {
        self.late
    }

    /// Schedule `payload` to fire at `time`. Times in the past are clamped
    /// to `now` so the simulation can never move backwards; the clamp is
    /// counted in [`EventQueue::late_schedules`] and treated as a fatal
    /// invariant violation by the check harness.
    pub fn schedule(&mut self, time: SimTime, payload: E) {
        debug_assert!(
            time >= self.now,
            "scheduled an event in the past: {time:?} < {:?}",
            self.now
        );
        self.schedule_unchecked(time, payload);
    }

    /// [`EventQueue::schedule`] without the debug assertion — exactly
    /// what a buggy caller does in a release build. Late times are still
    /// clamped and counted; the only use for calling this directly is
    /// the `--inject-late` probe in `runner check`, which plants one
    /// late event to prove the gate turns the count into a failure.
    pub fn schedule_unchecked(&mut self, time: SimTime, payload: E) {
        if time < self.now {
            self.late += 1;
        }
        let time = time.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        // Amortized slot pre-sizing; see the `prepped` field doc.
        if self.prepped < NUM_SLOTS {
            let end = (self.prepped + 4).min(NUM_SLOTS);
            for s in &mut self.slots[self.prepped..end] {
                s.reserve(8);
            }
            self.prepped = end;
        }
        // Profiling folded into one branch: the common disabled path pays
        // a single `Option` check and nothing else.
        if let Some(p) = self.prof.clone() {
            let t0 = p.start();
            self.insert(Entry { time, seq, payload });
            if let Some(t0) = t0 {
                p.record(Phase::EventPush, t0);
            }
            p.sample_depth(self.len());
        } else {
            self.insert(Entry { time, seq, payload });
        }
    }

    /// Timestamp of the next event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        let wheel = self.peek_wheel_time();
        let over = self.overflow.peek().map(|e| e.0.time);
        match (wheel, over) {
            (Some(w), Some(o)) => Some(w.min(o)),
            (w, o) => w.or(o),
        }
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        if let Some(p) = self.prof.clone() {
            let t0 = p.start();
            let ev = self.pop_inner()?;
            if let Some(t0) = t0 {
                p.record(Phase::EventPop, t0);
            }
            p.sample_depth(self.len());
            Some(ev)
        } else {
            self.pop_inner()
        }
    }

    // ---- wheel internals -------------------------------------------------

    /// Route an entry to its wheel slot or the overflow heap.
    fn insert(&mut self, e: Entry<E>) {
        let tick = tick_of(e.time);
        // `e.time >= now >= cursor window start`, so the difference is
        // non-negative; at or beyond one horizon it overflows.
        if tick - self.cursor_tick >= NUM_SLOTS as u64 {
            self.overflow.push(OverflowEntry(e));
        } else {
            self.wheel_insert(tick, e);
        }
    }

    fn wheel_insert(&mut self, tick: u64, e: Entry<E>) {
        let slot = (tick as usize) & (NUM_SLOTS - 1);
        let v = &mut self.slots[slot];
        if tick == self.cursor_tick && self.cur_sorted {
            // The cursor already sorted this slot (descending); keep it
            // ordered so pops stay O(1) from the back.
            let key = (e.time, e.seq);
            let pos = v.partition_point(|x| (x.time, x.seq) > key);
            v.insert(pos, e);
        } else {
            v.push(e);
        }
        self.occ[slot >> 6] |= 1 << (slot & 63);
        self.wheel_len += 1;
    }

    /// Move overflow events that have come within the horizon into the
    /// wheel. Cheap when none are due: one heap peek.
    fn migrate_due(&mut self) {
        while let Some(top) = self.overflow.peek() {
            let tick = tick_of(top.0.time);
            if tick - self.cursor_tick >= NUM_SLOTS as u64 {
                break;
            }
            let OverflowEntry(e) = self.overflow.pop().expect("peeked");
            self.wheel_insert(tick, e);
        }
    }

    /// Absolute slot number of the next occupied slot, scanning the
    /// occupancy bitmap circularly from the cursor.
    fn next_wheel_tick(&self) -> Option<u64> {
        if self.wheel_len == 0 {
            return None;
        }
        let start = (self.cursor_tick as usize) & (NUM_SLOTS - 1);
        let mut word_i = start >> 6;
        let mut word = self.occ[word_i] & (!0u64 << (start & 63));
        for _ in 0..=OCC_WORDS {
            if word != 0 {
                let slot = (word_i << 6) | word.trailing_zeros() as usize;
                let dist = (slot + NUM_SLOTS - start) & (NUM_SLOTS - 1);
                return Some(self.cursor_tick + dist as u64);
            }
            word_i = (word_i + 1) & (OCC_WORDS - 1);
            word = self.occ[word_i];
        }
        unreachable!("wheel_len > 0 but no occupancy bit set");
    }

    /// Earliest event time stored in the wheel, if any.
    fn peek_wheel_time(&self) -> Option<SimTime> {
        let tick = self.next_wheel_tick()?;
        let slot = (tick as usize) & (NUM_SLOTS - 1);
        let v = &self.slots[slot];
        if tick == self.cursor_tick && self.cur_sorted {
            v.last().map(|e| e.time)
        } else {
            v.iter().map(|e| e.time).min()
        }
    }

    fn pop_inner(&mut self) -> Option<ScheduledEvent<E>> {
        self.migrate_due();
        let tick = match self.next_wheel_tick() {
            Some(t) => t,
            None => {
                if self.overflow.is_empty() {
                    return None;
                }
                // The wheel is empty and every pending event is beyond the
                // horizon: jump the window to the earliest one.
                let min_tick = tick_of(self.overflow.peek().expect("nonempty").0.time);
                self.cursor_tick = min_tick;
                self.cur_sorted = false;
                self.migrate_due();
                self.next_wheel_tick().expect("just migrated")
            }
        };
        if tick != self.cursor_tick {
            self.cursor_tick = tick;
            self.cur_sorted = false;
        }
        let slot = (tick as usize) & (NUM_SLOTS - 1);
        if !self.cur_sorted {
            self.slots[slot].sort_unstable_by_key(|e| std::cmp::Reverse((e.time, e.seq)));
            self.cur_sorted = true;
        }
        let e = self.slots[slot].pop().expect("occupied slot");
        self.wheel_len -= 1;
        if self.slots[slot].is_empty() {
            self.occ[slot >> 6] &= !(1 << (slot & 63));
        }
        self.now = e.time;
        self.popped += 1;
        Some(ScheduledEvent {
            time: e.time,
            seq: e.seq,
            payload: e.payload,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;
    use crate::time::SimDuration;

    #[test]
    fn late_schedules_are_clamped_and_counted() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(100), 1u32);
        assert_eq!(q.pop().expect("scheduled").time, SimTime::from_nanos(100));
        assert_eq!(q.late_schedules(), 0);
        // A buggy caller in a release build schedules behind the clock.
        q.schedule_unchecked(SimTime::from_nanos(40), 2);
        assert_eq!(q.late_schedules(), 1);
        let ev = q.pop().expect("clamped event still fires");
        assert_eq!(ev.time, SimTime::from_nanos(100), "clamped to now");
        assert_eq!(ev.payload, 2);
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), "c");
        q.schedule(SimTime::from_nanos(10), "a");
        q.schedule(SimTime::from_nanos(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(q.now(), SimTime::from_nanos(30));
        assert_eq!(q.events_processed(), 3);
    }

    #[test]
    fn simultaneous_events_fire_in_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn profiler_observes_without_changing_order() {
        use crate::prof::{Phase, Profiler};
        let p = Profiler::new();
        p.set_enabled(true);
        let mut q = EventQueue::new();
        q.set_profiler(p.clone());
        q.schedule(SimTime::from_nanos(30), "c");
        q.schedule(SimTime::from_nanos(10), "a");
        q.schedule(SimTime::from_nanos(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!["a", "b", "c"], "profiling must not reorder");
        let s = p.snapshot();
        assert_eq!(s.phases[Phase::EventPush as usize].calls, 3);
        assert_eq!(s.phases[Phase::EventPop as usize].calls, 3);
        assert_eq!(s.depth_max, 3);
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(100), ());
        q.pop();
        // Scheduling "now" after time advanced is fine:
        q.schedule(q.now() + SimDuration::from_nanos(1), ());
        assert_eq!(q.pop().unwrap().time, SimTime::from_nanos(101));
    }

    #[test]
    fn far_future_events_survive_the_overflow_heap() {
        let mut q = EventQueue::new();
        // Beyond the ~1.07 s horizon — lands in the overflow heap.
        q.schedule(SimTime::from_nanos(5_000_000_000), "far");
        q.schedule(SimTime::from_nanos(100), "near");
        // The maximum representable time works as an "infinite" sentinel.
        q.schedule(SimTime::MAX, "sentinel");
        assert_eq!(q.len(), 3);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(100)));
        assert_eq!(q.pop().unwrap().payload, "near");
        assert_eq!(q.pop().unwrap().payload, "far");
        assert_eq!(q.now(), SimTime::from_nanos(5_000_000_000));
        assert_eq!(q.pop().unwrap().payload, "sentinel");
        assert_eq!(q.now(), SimTime::MAX);
        assert!(q.pop().is_none());
    }

    #[test]
    fn interleaved_push_pop_across_wheel_wrap() {
        // March the clock across several horizons (wheel wraps) while
        // events stream in just ahead of it.
        let mut q = EventQueue::new();
        let step = SimDuration::from_millis(200);
        q.schedule(SimTime::ZERO + step, 0u64);
        let mut popped = Vec::new();
        for i in 1..40u64 {
            let e = q.pop().expect("stream continues");
            popped.push(e.payload);
            q.schedule(e.time + step, i);
        }
        assert_eq!(popped, (0..39).collect::<Vec<_>>());
        // 39 * 200ms = 7.8 s >> 1.07 s horizon: the ring wrapped.
        assert!(q.now() > SimTime::from_nanos(7 << 30));
    }

    /// The tentpole invariant: the wheel pops in *identical* `(time, seq)`
    /// order to a reference `(time, seq)` binary heap over fuzzed
    /// schedules mixing same-tick floods, sub-slot jitter, in-horizon
    /// spreads, far-future overflow and wheel-wrap boundaries.
    #[test]
    fn wheel_matches_reference_heap_on_fuzzed_schedules() {
        for seed in 0..20u64 {
            let mut rng = SimRng::seed_from_u64(0xca1e_4da2 ^ seed);
            let mut wheel: EventQueue<u64> = EventQueue::new();
            let mut reference: BinaryHeap<std::cmp::Reverse<(SimTime, u64, u64)>> =
                BinaryHeap::new();
            let mut next_id = 0u64;
            let mut ref_seq = 0u64;
            let mut ref_now = SimTime::ZERO;
            for _ in 0..2_000 {
                let burst = match rng.gen_range(4) {
                    0 => rng.gen_range(20) + 1, // same-instant flood
                    _ => 1,
                };
                let offset = match rng.gen_range(6) {
                    0 => 0,                                   // this very tick
                    1 => rng.gen_range(1 << SLOT_SHIFT),      // same slot
                    2 => rng.gen_range(1 << 25),              // in horizon
                    3 => (1 << 30) - 64 + rng.gen_range(128), // horizon boundary
                    4 => (1 << 30) + rng.gen_range(1 << 32),  // deep overflow
                    _ => rng.gen_range(1 << 21),              // nearby slots
                };
                let t = wheel.now() + SimDuration::from_nanos(offset);
                for _ in 0..burst {
                    wheel.schedule(t, next_id);
                    reference.push(std::cmp::Reverse((t.max(ref_now), ref_seq, next_id)));
                    ref_seq += 1;
                    next_id += 1;
                }
                // Pop a few events (sometimes none) to advance the clock.
                for _ in 0..rng.gen_range(4) {
                    let got = wheel.pop();
                    let want = reference.pop();
                    match (got, want) {
                        (None, None) => {}
                        (Some(g), Some(std::cmp::Reverse((t, s, id)))) => {
                            assert_eq!(
                                (g.time, g.seq, g.payload),
                                (t, s, id),
                                "divergence at seed {seed}"
                            );
                            ref_now = t;
                        }
                        (g, w) => panic!(
                            "length divergence at seed {seed}: wheel={:?} ref={:?}",
                            g.map(|e| e.payload),
                            w.map(|r| r.0 .2)
                        ),
                    }
                }
                assert_eq!(wheel.len(), reference.len());
            }
            // Drain both completely.
            while let Some(std::cmp::Reverse((t, s, id))) = reference.pop() {
                let g = wheel.pop().expect("wheel drains with reference");
                assert_eq!((g.time, g.seq, g.payload), (t, s, id));
            }
            assert!(wheel.pop().is_none());
            assert_eq!(wheel.late_schedules(), 0);
        }
    }
}
