//! Typed errors for the fallible I/O paths of the simulation.
//!
//! The stack is infallible on the happy path — a request submitted to a
//! healthy device always completes. Faults injected by `sim-fault` (and
//! any future failure model) surface through these types instead of
//! panicking, so error propagation can be simulated and asserted on:
//! device → block layer → file system → fsync caller.

use std::fmt;

use crate::ids::RequestId;

/// Why an I/O operation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoErrorKind {
    /// The device reported a transient error (medium error, command
    /// timeout); the data did not reach the platter.
    TransientDevice,
    /// A multi-block write was torn: only a prefix became durable. The
    /// device reports failure, but part of the write may be on media.
    TornWrite,
    /// Power was cut while the operation was in flight.
    PowerCut,
    /// The journal aborted (a log or commit-record write failed); the
    /// file system refuses further synchronizing operations, as ext4
    /// does after `jbd2` aborts.
    JournalAborted,
}

impl IoErrorKind {
    /// Short stable name (metrics keys, reports).
    pub fn name(self) -> &'static str {
        match self {
            IoErrorKind::TransientDevice => "transient-device",
            IoErrorKind::TornWrite => "torn-write",
            IoErrorKind::PowerCut => "power-cut",
            IoErrorKind::JournalAborted => "journal-aborted",
        }
    }
}

/// A failed I/O operation, optionally tied to the block request that
/// caused it (an fsync failure caused by a lost journal write carries the
/// journal request's id).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IoError {
    /// What went wrong.
    pub kind: IoErrorKind,
    /// The originating block request, when one exists.
    pub req: Option<RequestId>,
}

impl IoError {
    /// An error of `kind` with no originating request.
    pub fn new(kind: IoErrorKind) -> Self {
        IoError { kind, req: None }
    }

    /// An error of `kind` caused by request `req`.
    pub fn for_request(kind: IoErrorKind, req: RequestId) -> Self {
        IoError {
            kind,
            req: Some(req),
        }
    }
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.req {
            Some(r) => write!(f, "io error: {} (request {})", self.kind.name(), r.raw()),
            None => write!(f, "io error: {}", self.kind.name()),
        }
    }
}

impl std::error::Error for IoError {}

/// Result alias for fallible simulation I/O.
pub type IoResult<T> = Result<T, IoError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_kind_and_request() {
        let e = IoError::new(IoErrorKind::TransientDevice);
        assert_eq!(e.to_string(), "io error: transient-device");
        let e = IoError::for_request(IoErrorKind::TornWrite, RequestId(7));
        assert!(e.to_string().contains("torn-write"));
        assert!(e.to_string().contains('7'));
    }

    #[test]
    fn kinds_have_distinct_names() {
        let kinds = [
            IoErrorKind::TransientDevice,
            IoErrorKind::TornWrite,
            IoErrorKind::PowerCut,
            IoErrorKind::JournalAborted,
        ];
        for (i, a) in kinds.iter().enumerate() {
            for b in &kinds[i + 1..] {
                assert_ne!(a.name(), b.name());
            }
        }
    }
}
