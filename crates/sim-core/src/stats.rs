//! Small statistics helpers used by the experiment harness: means,
//! standard deviations, percentiles and a time-series sampler.

use crate::time::{SimDuration, SimTime};

/// Arithmetic mean; zero for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation; zero for fewer than two samples.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64;
    var.sqrt()
}

/// NaN-safe summary of a sample: non-finite values (NaN, ±inf) are counted
/// and excluded instead of poisoning every downstream aggregate — the same
/// discipline as [`Percentiles`]' `total_cmp` sort, which parks NaNs at the
/// tail rather than panicking mid-experiment.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Summary {
    /// Finite samples that entered the aggregates.
    pub n: usize,
    /// Non-finite samples that were dropped.
    pub dropped: usize,
    /// Mean of the finite samples; zero when none.
    pub mean: f64,
    /// Sample (n−1) standard deviation of the finite samples; zero for
    /// fewer than two.
    pub stddev: f64,
    /// Half-width of the 95% confidence interval of the mean (normal
    /// approximation, `1.96·s/√n`); zero for fewer than two samples.
    pub ci95: f64,
}

/// Summarize a sample, skipping non-finite values.
pub fn summarize(xs: &[f64]) -> Summary {
    let finite: Vec<f64> = xs.iter().copied().filter(|x| x.is_finite()).collect();
    let n = finite.len();
    let dropped = xs.len() - n;
    if n == 0 {
        return Summary {
            dropped,
            ..Summary::default()
        };
    }
    let mean = finite.iter().sum::<f64>() / n as f64;
    if n < 2 {
        return Summary {
            n,
            dropped,
            mean,
            ..Summary::default()
        };
    }
    let var = finite.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n as f64 - 1.0);
    let stddev = var.sqrt();
    Summary {
        n,
        dropped,
        mean,
        stddev,
        ci95: 1.96 * stddev / (n as f64).sqrt(),
    }
}

/// NaN-safe arithmetic mean: non-finite samples are skipped.
pub fn finite_mean(xs: &[f64]) -> f64 {
    summarize(xs).mean
}

/// NaN-safe sample (n−1) standard deviation: non-finite samples are
/// skipped. Note [`stddev`] is the *population* deviation; this variant
/// feeds confidence intervals, which want the sample estimator.
pub fn finite_stddev(xs: &[f64]) -> f64 {
    summarize(xs).stddev
}

/// NaN-safe half-width of the 95% confidence interval of the mean.
pub fn ci95(xs: &[f64]) -> f64 {
    summarize(xs).ci95
}

/// Percentile by the nearest-rank method (`p` in `[0, 100]`). Returns zero
/// for an empty slice.
///
/// Sorts a copy of the input on every call; when several percentiles of
/// the same sample are needed (the common case in experiment tables),
/// build a [`Percentiles`] once instead.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    Percentiles::from_slice(xs).p(p)
}

/// A sorted sample that serves any number of nearest-rank percentile
/// queries after a single sort.
#[derive(Debug, Clone, Default)]
pub struct Percentiles {
    sorted: Vec<f64>,
}

impl Percentiles {
    /// Take ownership of the sample and sort it once. NaNs sort to the
    /// end (IEEE total order) instead of panicking the whole experiment;
    /// a sample poisoned by NaN then shows up as a NaN tail percentile,
    /// which is debuggable, where a panic mid-run loses the figure.
    pub fn new(mut xs: Vec<f64>) -> Self {
        xs.sort_by(|a, b| a.total_cmp(b));
        Percentiles { sorted: xs }
    }

    /// Copy the sample and sort it once.
    pub fn from_slice(xs: &[f64]) -> Self {
        Self::new(xs.to_vec())
    }

    /// Nearest-rank percentile (`p` in `[0, 100]`); zero when empty.
    pub fn p(&self, p: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let rank = ((p / 100.0) * self.sorted.len() as f64).ceil() as usize;
        self.sorted[rank.clamp(1, self.sorted.len()) - 1]
    }

    /// Median.
    pub fn p50(&self) -> f64 {
        self.p(50.0)
    }

    /// 95th percentile.
    pub fn p95(&self) -> f64 {
        self.p(95.0)
    }

    /// 99th percentile.
    pub fn p99(&self) -> f64 {
        self.p(99.0)
    }

    /// 99.9th percentile (SLO tail reporting).
    pub fn p999(&self) -> f64 {
        self.p(99.9)
    }

    /// Sample size.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when no samples were provided.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Largest sample; zero when empty.
    pub fn max(&self) -> f64 {
        self.sorted.last().copied().unwrap_or(0.0)
    }
}

/// Accumulates throughput of a flow: bytes completed over elapsed time.
#[derive(Debug, Clone, Default)]
pub struct ThroughputMeter {
    bytes: u64,
    start: Option<SimTime>,
    end: SimTime,
}

impl ThroughputMeter {
    /// Fresh meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `bytes` completing at `now`.
    pub fn record(&mut self, now: SimTime, bytes: u64) {
        if self.start.is_none() {
            self.start = Some(now);
        }
        self.bytes += bytes;
        self.end = self.end.max(now);
    }

    /// Total bytes recorded.
    pub fn total_bytes(&self) -> u64 {
        self.bytes
    }

    /// Mean throughput in MB/s over `window`, measuring from t = 0.
    pub fn mbps_over(&self, window: SimDuration) -> f64 {
        let secs = window.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.bytes as f64 / 1e6 / secs
    }
}

/// Samples a cumulative byte counter into fixed-width time buckets, giving a
/// throughput-over-time series (used for the Figure 1 recovery plot).
#[derive(Debug, Clone)]
pub struct TimeSeries {
    bucket: SimDuration,
    buckets: Vec<u64>,
}

impl TimeSeries {
    /// A series with the given bucket width.
    pub fn new(bucket: SimDuration) -> Self {
        assert!(bucket.as_nanos() > 0, "bucket width must be positive");
        TimeSeries {
            bucket,
            buckets: Vec::new(),
        }
    }

    /// Add `bytes` at time `now` to the containing bucket.
    pub fn record(&mut self, now: SimTime, bytes: u64) {
        let idx = (now.as_nanos() / self.bucket.as_nanos()) as usize;
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += bytes;
    }

    /// Per-bucket throughput in MB/s.
    pub fn mbps(&self) -> Vec<f64> {
        let secs = self.bucket.as_secs_f64();
        self.buckets
            .iter()
            .map(|&b| b as f64 / 1e6 / secs)
            .collect()
    }

    /// Bucket width.
    pub fn bucket_width(&self) -> SimDuration {
        self.bucket
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(stddev(&[5.0]), 0.0);
        let s = stddev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s - 2.0).abs() < 1e-9);
    }

    #[test]
    fn summarize_known_values() {
        let s = summarize(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.n, 8);
        assert_eq!(s.dropped, 0);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample stddev of the classic set: sqrt(32/7).
        assert!((s.stddev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert!((s.ci95 - 1.96 * s.stddev / 8.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summarize_is_nan_safe() {
        let s = summarize(&[1.0, f64::NAN, 3.0, f64::INFINITY, f64::NEG_INFINITY]);
        assert_eq!(s.n, 2);
        assert_eq!(s.dropped, 3);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!(s.stddev.is_finite() && s.ci95.is_finite());
        // All-NaN input degrades to zeros, not NaN.
        let all_bad = summarize(&[f64::NAN, f64::NAN]);
        assert_eq!(all_bad.n, 0);
        assert_eq!(all_bad.dropped, 2);
        assert_eq!(all_bad.mean, 0.0);
        assert_eq!(all_bad.ci95, 0.0);
    }

    #[test]
    fn summarize_degenerate_sizes() {
        assert_eq!(summarize(&[]), Summary::default());
        let one = summarize(&[5.0]);
        assert_eq!((one.n, one.mean, one.stddev, one.ci95), (1, 5.0, 0.0, 0.0));
    }

    #[test]
    fn finite_helpers_agree_with_summary() {
        let xs = [1.0, 2.0, f64::NAN, 4.0];
        let s = summarize(&xs);
        assert_eq!(finite_mean(&xs), s.mean);
        assert_eq!(finite_stddev(&xs), s.stddev);
        assert_eq!(ci95(&xs), s.ci95);
        // And the NaN did not leak into any of them.
        assert!(finite_mean(&xs).is_finite());
        assert!(finite_stddev(&xs).is_finite());
    }

    #[test]
    fn percentiles_nearest_rank() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&xs, 50.0), 50.0);
        assert_eq!(percentile(&xs, 99.0), 99.0);
        assert_eq!(percentile(&xs, 100.0), 100.0);
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        // p999 distinguishes the extreme tail once the sample is big
        // enough for the nearest rank to move past p99.
        let big: Vec<f64> = (1..=10_000).map(|i| i as f64).collect();
        let ps = Percentiles::new(big);
        // Nearest-rank with binary 0.99/0.999 can land one rank high.
        assert!((9900.0..=9901.0).contains(&ps.p99()), "{}", ps.p99());
        assert!((9990.0..=9991.0).contains(&ps.p999()), "{}", ps.p999());
        assert!(ps.p999() > ps.p99());
        assert_eq!(Percentiles::new(vec![]).p999(), 0.0);
    }

    #[test]
    fn percentiles_struct_sorts_once_and_agrees() {
        let xs = vec![5.0, 1.0, 9.0, 3.0, 7.0];
        let ps = Percentiles::new(xs.clone());
        for p in [0.0, 25.0, 50.0, 95.0, 99.0, 100.0] {
            assert_eq!(ps.p(p), percentile(&xs, p));
        }
        assert_eq!(ps.p50(), 5.0);
        assert_eq!(ps.max(), 9.0);
        assert_eq!(ps.len(), 5);
        assert!(Percentiles::new(vec![]).is_empty());
        assert_eq!(Percentiles::new(vec![]).p(50.0), 0.0);
    }

    #[test]
    fn throughput_meter() {
        let mut m = ThroughputMeter::new();
        m.record(SimTime::from_nanos(1_000_000_000), 10_000_000);
        m.record(SimTime::from_nanos(2_000_000_000), 10_000_000);
        assert_eq!(m.total_bytes(), 20_000_000);
        let mbps = m.mbps_over(SimDuration::from_secs(2));
        assert!((mbps - 10.0).abs() < 1e-9);
    }

    #[test]
    fn time_series_buckets() {
        let mut ts = TimeSeries::new(SimDuration::from_secs(1));
        ts.record(SimTime::from_nanos(100), 1_000_000);
        ts.record(SimTime::from_nanos(1_500_000_000), 2_000_000);
        ts.record(SimTime::from_nanos(1_600_000_000), 1_000_000);
        let mbps = ts.mbps();
        assert_eq!(mbps.len(), 2);
        assert!((mbps[0] - 1.0).abs() < 1e-9);
        assert!((mbps[1] - 3.0).abs() < 1e-9);
    }
}
