//! Randomized tests for the foundation types, driven by the in-tree
//! `SimRng` so the suite needs no external property-testing crate and
//! every run exercises the same deterministic case set.

use sim_core::rng::SimRng;
use sim_core::{CauseSet, EventQueue, Pid, SimTime};

fn rand_pids(rng: &mut SimRng) -> Vec<u32> {
    let n = rng.gen_range(20) as usize;
    (0..n).map(|_| rng.gen_range(100) as u32).collect()
}

/// Union is commutative, associative and idempotent; the result
/// contains exactly the union of members.
#[test]
fn cause_set_union_laws() {
    let mut rng = SimRng::seed_from_u64(0xC0FFEE);
    for _ in 0..256 {
        let a = rand_pids(&mut rng);
        let b = rand_pids(&mut rng);
        let c = rand_pids(&mut rng);
        let sa = CauseSet::from_pids(a.iter().map(|&p| Pid(p)));
        let sb = CauseSet::from_pids(b.iter().map(|&p| Pid(p)));
        let sc = CauseSet::from_pids(c.iter().map(|&p| Pid(p)));
        // commutative
        assert_eq!(sa.clone().union(&sb), sb.clone().union(&sa));
        // associative
        assert_eq!(
            sa.clone().union(&sb).union(&sc),
            sa.clone().union(&sb.clone().union(&sc))
        );
        // idempotent
        assert_eq!(sa.clone().union(&sa), sa.clone());
        // membership
        let u = sa.clone().union(&sb);
        for &p in a.iter().chain(b.iter()) {
            assert!(u.contains(Pid(p)));
        }
        assert_eq!(
            u.len(),
            a.iter()
                .chain(b.iter())
                .collect::<std::collections::HashSet<_>>()
                .len()
        );
    }
}

/// Iteration is always sorted and duplicate-free.
#[test]
fn cause_set_is_sorted_and_deduped() {
    let mut rng = SimRng::seed_from_u64(0xBEEF);
    for _ in 0..256 {
        let a = rand_pids(&mut rng);
        let s = CauseSet::from_pids(a.iter().map(|&p| Pid(p)));
        let v: Vec<Pid> = s.iter().collect();
        let mut sorted = v.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(v, sorted);
    }
}

/// Shares always sum to the full cost (when non-empty).
#[test]
fn cause_set_shares_conserve_cost() {
    let mut rng = SimRng::seed_from_u64(0xACE);
    for _ in 0..256 {
        let a = rand_pids(&mut rng);
        let cost = rng.gen_f64() * 1e9;
        let s = CauseSet::from_pids(a.iter().map(|&p| Pid(p)));
        let total: f64 = s.shares(cost).map(|(_, v)| v).sum();
        if s.is_empty() {
            assert_eq!(total, 0.0);
        } else {
            assert!((total - cost).abs() < 1e-6 * cost.max(1.0));
        }
    }
}

/// The event queue pops every scheduled event exactly once, in
/// non-decreasing time order, with FIFO among equal times.
#[test]
fn event_queue_is_a_stable_priority_queue() {
    let mut rng = SimRng::seed_from_u64(0xD1CE);
    for _ in 0..128 {
        let n = 1 + rng.gen_range(99) as usize;
        let times: Vec<u64> = (0..n).map(|_| rng.gen_range(1000)).collect();
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), i);
        }
        let mut popped = Vec::new();
        let mut last = (SimTime::ZERO, 0u64);
        while let Some(ev) = q.pop() {
            assert!(ev.time >= last.0, "time went backwards");
            if ev.time == last.0 {
                assert!(ev.seq > last.1, "ties must pop in insertion order");
            }
            last = (ev.time, ev.seq);
            popped.push(ev.payload);
        }
        popped.sort_unstable();
        assert_eq!(popped, (0..times.len()).collect::<Vec<_>>());
    }
}

/// Percentile is always one of the inputs and monotone in p.
#[test]
fn percentile_is_monotone() {
    let mut rng = SimRng::seed_from_u64(0xFACE);
    for _ in 0..256 {
        let n = 1 + rng.gen_range(49) as usize;
        let xs: Vec<f64> = (0..n).map(|_| rng.gen_f64() * 1e6).collect();
        let p50 = sim_core::stats::percentile(&xs, 50.0);
        let p90 = sim_core::stats::percentile(&xs, 90.0);
        let p100 = sim_core::stats::percentile(&xs, 100.0);
        assert!(xs.contains(&p50));
        assert!(p50 <= p90);
        assert!(p90 <= p100);
        let max = xs.iter().cloned().fold(f64::MIN, f64::max);
        assert_eq!(p100, max);
    }
}

/// `Percentiles` agrees with the one-shot `percentile` helper on every
/// rank, sorting only once.
#[test]
fn percentiles_struct_matches_free_function() {
    let mut rng = SimRng::seed_from_u64(0x5EED);
    for _ in 0..128 {
        let n = 1 + rng.gen_range(60) as usize;
        let xs: Vec<f64> = (0..n).map(|_| rng.gen_f64() * 1e6).collect();
        let ps = sim_core::stats::Percentiles::new(xs.clone());
        for p in [0.0, 10.0, 50.0, 90.0, 95.0, 99.0, 99.9, 100.0] {
            assert_eq!(ps.p(p), sim_core::stats::percentile(&xs, p), "p={p}");
        }
        assert_eq!(ps.p50(), sim_core::stats::percentile(&xs, 50.0));
        assert_eq!(ps.p95(), sim_core::stats::percentile(&xs, 95.0));
        assert_eq!(ps.p99(), sim_core::stats::percentile(&xs, 99.0));
        assert_eq!(ps.len(), xs.len());
    }
}
