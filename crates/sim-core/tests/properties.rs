//! Randomized tests for the foundation types, driven by the in-tree
//! `SimRng` so the suite needs no external property-testing crate and
//! every run exercises the same deterministic case set.

use sim_core::rng::SimRng;
use sim_core::{CauseSet, EventQueue, Pid, SimTime};

fn rand_pids(rng: &mut SimRng) -> Vec<u32> {
    let n = rng.gen_range(20) as usize;
    (0..n).map(|_| rng.gen_range(100) as u32).collect()
}

/// Union is commutative, associative and idempotent; the result
/// contains exactly the union of members.
#[test]
fn cause_set_union_laws() {
    let mut rng = SimRng::seed_from_u64(0xC0FFEE);
    for _ in 0..256 {
        let a = rand_pids(&mut rng);
        let b = rand_pids(&mut rng);
        let c = rand_pids(&mut rng);
        let sa = CauseSet::from_pids(a.iter().map(|&p| Pid(p)));
        let sb = CauseSet::from_pids(b.iter().map(|&p| Pid(p)));
        let sc = CauseSet::from_pids(c.iter().map(|&p| Pid(p)));
        // commutative
        assert_eq!(sa.clone().union(&sb), sb.clone().union(&sa));
        // associative
        assert_eq!(
            sa.clone().union(&sb).union(&sc),
            sa.clone().union(&sb.clone().union(&sc))
        );
        // idempotent
        assert_eq!(sa.clone().union(&sa), sa.clone());
        // membership
        let u = sa.clone().union(&sb);
        for &p in a.iter().chain(b.iter()) {
            assert!(u.contains(Pid(p)));
        }
        assert_eq!(
            u.len(),
            a.iter()
                .chain(b.iter())
                .collect::<std::collections::HashSet<_>>()
                .len()
        );
    }
}

/// Iteration is always sorted and duplicate-free.
#[test]
fn cause_set_is_sorted_and_deduped() {
    let mut rng = SimRng::seed_from_u64(0xBEEF);
    for _ in 0..256 {
        let a = rand_pids(&mut rng);
        let s = CauseSet::from_pids(a.iter().map(|&p| Pid(p)));
        let v: Vec<Pid> = s.iter().collect();
        let mut sorted = v.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(v, sorted);
    }
}

/// Shares always sum to the full cost (when non-empty).
#[test]
fn cause_set_shares_conserve_cost() {
    let mut rng = SimRng::seed_from_u64(0xACE);
    for _ in 0..256 {
        let a = rand_pids(&mut rng);
        let cost = rng.gen_f64() * 1e9;
        let s = CauseSet::from_pids(a.iter().map(|&p| Pid(p)));
        let total: f64 = s.shares(cost).map(|(_, v)| v).sum();
        if s.is_empty() {
            assert_eq!(total, 0.0);
        } else {
            assert!((total - cost).abs() < 1e-6 * cost.max(1.0));
        }
    }
}

/// The event queue pops every scheduled event exactly once, in
/// non-decreasing time order, with FIFO among equal times.
#[test]
fn event_queue_is_a_stable_priority_queue() {
    let mut rng = SimRng::seed_from_u64(0xD1CE);
    for _ in 0..128 {
        let n = 1 + rng.gen_range(99) as usize;
        let times: Vec<u64> = (0..n).map(|_| rng.gen_range(1000)).collect();
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), i);
        }
        let mut popped = Vec::new();
        let mut last = (SimTime::ZERO, 0u64);
        while let Some(ev) = q.pop() {
            assert!(ev.time >= last.0, "time went backwards");
            if ev.time == last.0 {
                assert!(ev.seq > last.1, "ties must pop in insertion order");
            }
            last = (ev.time, ev.seq);
            popped.push(ev.payload);
        }
        popped.sort_unstable();
        assert_eq!(popped, (0..times.len()).collect::<Vec<_>>());
    }
}

/// Percentile is always one of the inputs and monotone in p.
#[test]
fn percentile_is_monotone() {
    let mut rng = SimRng::seed_from_u64(0xFACE);
    for _ in 0..256 {
        let n = 1 + rng.gen_range(49) as usize;
        let xs: Vec<f64> = (0..n).map(|_| rng.gen_f64() * 1e6).collect();
        let p50 = sim_core::stats::percentile(&xs, 50.0);
        let p90 = sim_core::stats::percentile(&xs, 90.0);
        let p100 = sim_core::stats::percentile(&xs, 100.0);
        assert!(xs.contains(&p50));
        assert!(p50 <= p90);
        assert!(p90 <= p100);
        let max = xs.iter().cloned().fold(f64::MIN, f64::max);
        assert_eq!(p100, max);
    }
}

/// `Percentiles` agrees with the one-shot `percentile` helper on every
/// rank, sorting only once.
#[test]
fn percentiles_struct_matches_free_function() {
    let mut rng = SimRng::seed_from_u64(0x5EED);
    for _ in 0..128 {
        let n = 1 + rng.gen_range(60) as usize;
        let xs: Vec<f64> = (0..n).map(|_| rng.gen_f64() * 1e6).collect();
        let ps = sim_core::stats::Percentiles::new(xs.clone());
        for p in [0.0, 10.0, 50.0, 90.0, 95.0, 99.0, 99.9, 100.0] {
            assert_eq!(ps.p(p), sim_core::stats::percentile(&xs, p), "p={p}");
        }
        assert_eq!(ps.p50(), sim_core::stats::percentile(&xs, 50.0));
        assert_eq!(ps.p95(), sim_core::stats::percentile(&xs, 95.0));
        assert_eq!(ps.p99(), sim_core::stats::percentile(&xs, 99.0));
        assert_eq!(ps.len(), xs.len());
    }
}

/// The 95% CI is a non-degenerate interval around the mean: the mean
/// sits inside its own bounds and the half-width matches the normal
/// approximation from the reported stddev and count.
#[test]
fn summary_ci_bounds_contain_the_mean() {
    let mut rng = SimRng::seed_from_u64(0xC1A0);
    for _ in 0..256 {
        let n = 2 + rng.gen_range(62) as usize;
        let xs: Vec<f64> = (0..n).map(|_| rng.gen_f64() * 1e6 - 5e5).collect();
        let s = sim_core::stats::summarize(&xs);
        assert_eq!(s.n, n);
        assert_eq!(s.dropped, 0);
        assert!(s.stddev >= 0.0);
        assert!(s.ci95 >= 0.0);
        assert!(s.mean - s.ci95 <= s.mean && s.mean <= s.mean + s.ci95);
        let expect = 1.96 * s.stddev / (n as f64).sqrt();
        assert!((s.ci95 - expect).abs() <= 1e-9 * expect.max(1.0));
        let manual = xs.iter().sum::<f64>() / n as f64;
        assert!((s.mean - manual).abs() <= 1e-9 * manual.abs().max(1.0));
    }
}

/// Non-finite samples are counted as dropped and have no effect on the
/// aggregates: a poisoned sample set summarizes identically to its
/// finite subset.
#[test]
fn summary_drops_non_finite_without_poisoning() {
    let mut rng = SimRng::seed_from_u64(0xBAD5EED);
    let poisons = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY];
    for _ in 0..256 {
        let n = 1 + rng.gen_range(40) as usize;
        let finite: Vec<f64> = (0..n).map(|_| rng.gen_f64() * 1e3).collect();
        // Splice a random number of poison values at random positions.
        let mut mixed = finite.clone();
        let k = 1 + rng.gen_range(8) as usize;
        for _ in 0..k {
            let at = rng.gen_range(mixed.len() as u64 + 1) as usize;
            let p = poisons[rng.gen_range(3) as usize];
            mixed.insert(at, p);
        }
        let clean = sim_core::stats::summarize(&finite);
        let dirty = sim_core::stats::summarize(&mixed);
        assert_eq!(dirty.dropped, k, "every poison sample must be counted");
        assert_eq!(dirty.n, clean.n);
        assert_eq!(dirty.mean, clean.mean, "mean poisoned by non-finite input");
        assert_eq!(dirty.stddev, clean.stddev);
        assert_eq!(dirty.ci95, clean.ci95);
        assert!(dirty.mean.is_finite() && dirty.stddev.is_finite());
    }
}

/// Degenerate sample counts: a single sample has zero spread and zero
/// CI (not NaN), and an all-poison set reports everything dropped.
#[test]
fn summary_degenerate_inputs() {
    let mut rng = SimRng::seed_from_u64(0x51);
    for _ in 0..64 {
        let x = rng.gen_f64() * 1e6;
        let s = sim_core::stats::summarize(&[x]);
        assert_eq!((s.n, s.dropped), (1, 0));
        assert_eq!(s.mean, x);
        assert_eq!(s.stddev, 0.0, "single-sample stddev must be 0, not NaN");
        assert_eq!(s.ci95, 0.0);
    }
    let s = sim_core::stats::summarize(&[f64::NAN, f64::INFINITY]);
    assert_eq!((s.n, s.dropped), (0, 2));
    assert_eq!((s.mean, s.stddev, s.ci95), (0.0, 0.0, 0.0));
    let empty = sim_core::stats::summarize(&[]);
    assert_eq!((empty.n, empty.dropped), (0, 0));
}
