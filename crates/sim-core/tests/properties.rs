//! Property-based tests for the foundation types.

use proptest::prelude::*;
use sim_core::{CauseSet, EventQueue, Pid, SimTime};

fn pids() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(0u32..100, 0..20)
}

proptest! {
    /// Union is commutative, associative and idempotent; the result
    /// contains exactly the union of members.
    #[test]
    fn cause_set_union_laws(a in pids(), b in pids(), c in pids()) {
        let sa = CauseSet::from_pids(a.iter().map(|&p| Pid(p)));
        let sb = CauseSet::from_pids(b.iter().map(|&p| Pid(p)));
        let sc = CauseSet::from_pids(c.iter().map(|&p| Pid(p)));
        // commutative
        prop_assert_eq!(sa.clone().union(&sb), sb.clone().union(&sa));
        // associative
        prop_assert_eq!(
            sa.clone().union(&sb).union(&sc),
            sa.clone().union(&sb.clone().union(&sc))
        );
        // idempotent
        prop_assert_eq!(sa.clone().union(&sa), sa.clone());
        // membership
        let u = sa.clone().union(&sb);
        for &p in a.iter().chain(b.iter()) {
            prop_assert!(u.contains(Pid(p)));
        }
        prop_assert_eq!(
            u.len(),
            a.iter().chain(b.iter()).collect::<std::collections::HashSet<_>>().len()
        );
    }

    /// Iteration is always sorted and duplicate-free.
    #[test]
    fn cause_set_is_sorted_and_deduped(a in pids()) {
        let s = CauseSet::from_pids(a.iter().map(|&p| Pid(p)));
        let v: Vec<Pid> = s.iter().collect();
        let mut sorted = v.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(v, sorted);
    }

    /// Shares always sum to the full cost (when non-empty).
    #[test]
    fn cause_set_shares_conserve_cost(a in pids(), cost in 0.0f64..1e9) {
        let s = CauseSet::from_pids(a.iter().map(|&p| Pid(p)));
        let total: f64 = s.shares(cost).map(|(_, v)| v).sum();
        if s.is_empty() {
            prop_assert_eq!(total, 0.0);
        } else {
            prop_assert!((total - cost).abs() < 1e-6 * cost.max(1.0));
        }
    }

    /// The event queue pops every scheduled event exactly once, in
    /// non-decreasing time order, with FIFO among equal times.
    #[test]
    fn event_queue_is_a_stable_priority_queue(times in proptest::collection::vec(0u64..1000, 1..100)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), i);
        }
        let mut popped = Vec::new();
        let mut last = (SimTime::ZERO, 0u64);
        while let Some(ev) = q.pop() {
            prop_assert!(ev.time >= last.0, "time went backwards");
            if ev.time == last.0 {
                prop_assert!(ev.seq > last.1, "ties must pop in insertion order");
            }
            last = (ev.time, ev.seq);
            popped.push(ev.payload);
        }
        popped.sort_unstable();
        prop_assert_eq!(popped, (0..times.len()).collect::<Vec<_>>());
    }

    /// Percentile is always one of the inputs and monotone in p.
    #[test]
    fn percentile_is_monotone(xs in proptest::collection::vec(0.0f64..1e6, 1..50)) {
        let p50 = sim_core::stats::percentile(&xs, 50.0);
        let p90 = sim_core::stats::percentile(&xs, 90.0);
        let p100 = sim_core::stats::percentile(&xs, 100.0);
        prop_assert!(xs.contains(&p50));
        prop_assert!(p50 <= p90);
        prop_assert!(p90 <= p100);
        let max = xs.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert_eq!(p100, max);
    }
}
