//! A PostgreSQL-like transaction mix (pgbench / TPC-B flavoured, §7.1.2).
//!
//! Each worker transaction reads a few random table pages, updates a few
//! (buffered), appends to the WAL and fsyncs it — the foreground commit
//! path whose latency Figure 19 plots. A checkpointer fsyncs the table
//! file every interval, producing the periodic dirty-data burst behind
//! the community's "fsync freeze" problem.

use std::cell::RefCell;
use std::rc::Rc;

use sim_core::{FileId, SimDuration, SimRng, SimTime, PAGE_SIZE};
use sim_kernel::{Outcome, ProcAction, ProcessLogic};
use split_core::SyscallKind;

/// Workload configuration.
#[derive(Debug, Clone, Copy)]
pub struct PgConfig {
    /// Table file size.
    pub table_bytes: u64,
    /// Pages read per transaction.
    pub reads_per_txn: u64,
    /// Pages updated per transaction.
    pub writes_per_txn: u64,
    /// Checkpoint interval (paper: 30 s).
    pub checkpoint_interval: SimDuration,
    /// Think time between transactions.
    pub think: SimDuration,
    /// Seed for the checkpointer's page-selection RNG (0 = historical).
    pub seed: u64,
}

impl Default for PgConfig {
    fn default() -> Self {
        PgConfig {
            table_bytes: 512 * 1024 * 1024,
            reads_per_txn: 2,
            writes_per_txn: 2,
            checkpoint_interval: SimDuration::from_secs(10),
            think: SimDuration::from_millis(2),
            seed: 0,
        }
    }
}

/// Shared measurement state.
#[derive(Debug, Default)]
pub struct PgShared {
    /// Completed transaction latencies (completion time, latency).
    pub txn_latencies: Vec<(SimTime, SimDuration)>,
    /// Checkpoints completed.
    pub checkpoints: u64,
    /// Shared-buffer pages dirtied since the last checkpoint — written to
    /// the table file only by the checkpointer, as in PostgreSQL.
    pub pending_pages: u64,
}

impl PgShared {
    /// Fresh shared state.
    pub fn new() -> Rc<RefCell<PgShared>> {
        Rc::new(RefCell::new(PgShared::default()))
    }
}

/// One pgbench-like worker.
pub struct PgWorker {
    cfg: PgConfig,
    shared: Rc<RefCell<PgShared>>,
    table: FileId,
    wal: FileId,
    rng: SimRng,
    wal_offset: u64,
    stage: u8,
    ops_done: u64,
    txn_started: SimTime,
}

impl PgWorker {
    /// A worker over the given table and WAL files.
    pub fn new(
        cfg: PgConfig,
        shared: Rc<RefCell<PgShared>>,
        table: FileId,
        wal: FileId,
        seed: u64,
    ) -> Self {
        PgWorker {
            cfg,
            shared,
            table,
            wal,
            rng: SimRng::seed_from_u64(seed),
            wal_offset: 0,
            stage: 0,
            ops_done: 0,
            txn_started: SimTime::ZERO,
        }
    }

    fn random_page_offset(&mut self) -> u64 {
        let pages = self.cfg.table_bytes / PAGE_SIZE;
        self.rng.gen_range(pages) * PAGE_SIZE
    }
}

impl ProcessLogic for PgWorker {
    fn next(&mut self, now: SimTime, _last: &Outcome) -> ProcAction {
        match self.stage {
            // Reads.
            0 => {
                if self.ops_done == 0 {
                    self.txn_started = now;
                }
                if self.ops_done < self.cfg.reads_per_txn {
                    self.ops_done += 1;
                    let offset = self.random_page_offset();
                    return ProcAction::Syscall(SyscallKind::Read {
                        file: self.table,
                        offset,
                        len: PAGE_SIZE,
                    });
                }
                self.stage = 1;
                self.ops_done = 0;
                self.next(now, _last)
            }
            // Updates: dirty shared buffers (counted for the next
            // checkpoint; PostgreSQL does not write table pages at commit
            // time), then append the WAL record.
            1 => {
                self.shared.borrow_mut().pending_pages += self.cfg.writes_per_txn;
                self.stage = 2;
                let a = ProcAction::Syscall(SyscallKind::Write {
                    file: self.wal,
                    offset: self.wal_offset,
                    len: PAGE_SIZE,
                });
                self.wal_offset = (self.wal_offset + PAGE_SIZE) % (128 * 1024 * 1024);
                a
            }
            // WAL fsync = commit.
            2 => {
                self.stage = 3;
                ProcAction::Syscall(SyscallKind::Fsync { file: self.wal })
            }
            _ => {
                let latency = now.since(self.txn_started);
                self.shared.borrow_mut().txn_latencies.push((now, latency));
                self.stage = 0;
                self.ops_done = 0;
                ProcAction::Sleep(self.cfg.think)
            }
        }
    }
}

/// The background checkpointer: every interval, write the dirtied shared
/// buffers to the table file and fsync it.
pub struct PgCheckpointer {
    cfg: PgConfig,
    shared: Rc<RefCell<PgShared>>,
    table: FileId,
    rng: SimRng,
    stage: u8,
    left: u64,
}

impl PgCheckpointer {
    /// A checkpointer over the table file.
    pub fn new(cfg: PgConfig, shared: Rc<RefCell<PgShared>>, table: FileId) -> Self {
        PgCheckpointer {
            cfg,
            shared,
            table,
            rng: SimRng::seed_from_u64(cfg.seed ^ 0x9c9c),
            stage: 0,
            left: 0,
        }
    }
}

impl ProcessLogic for PgCheckpointer {
    fn next(&mut self, _now: SimTime, _last: &Outcome) -> ProcAction {
        match self.stage {
            0 => {
                self.stage = 1;
                ProcAction::Sleep(self.cfg.checkpoint_interval)
            }
            1 => {
                let mut sh = self.shared.borrow_mut();
                self.left = sh.pending_pages;
                sh.pending_pages = 0;
                drop(sh);
                self.stage = 2;
                self.next(_now, _last)
            }
            // Write the dirty buffers to the table file…
            2 => {
                if self.left > 0 {
                    self.left -= 1;
                    let pages = self.cfg.table_bytes / PAGE_SIZE;
                    let page = self.rng.gen_range(pages);
                    return ProcAction::Syscall(SyscallKind::Write {
                        file: self.table,
                        offset: page * PAGE_SIZE,
                        len: PAGE_SIZE,
                    });
                }
                self.stage = 3;
                ProcAction::Syscall(SyscallKind::Fsync { file: self.table })
            }
            // …and the fsync makes the checkpoint durable.
            _ => {
                self.shared.borrow_mut().checkpoints += 1;
                self.stage = 0;
                self.next(_now, _last)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_transaction_shape() {
        let shared = PgShared::new();
        let cfg = PgConfig {
            reads_per_txn: 1,
            writes_per_txn: 1,
            ..Default::default()
        };
        let mut wk = PgWorker::new(cfg, shared.clone(), FileId(1), FileId(2), 3);
        let a = wk.next(SimTime::ZERO, &Outcome::None);
        assert!(matches!(
            a,
            ProcAction::Syscall(SyscallKind::Read {
                file: FileId(1),
                ..
            })
        ));
        // Updates dirty shared buffers; only the WAL is written at commit.
        let c = wk.next(SimTime::ZERO, &Outcome::None);
        assert!(matches!(
            c,
            ProcAction::Syscall(SyscallKind::Write {
                file: FileId(2),
                ..
            })
        ));
        let d = wk.next(SimTime::ZERO, &Outcome::None);
        assert!(matches!(
            d,
            ProcAction::Syscall(SyscallKind::Fsync { file: FileId(2) })
        ));
        let _ = wk.next(SimTime::from_nanos(1), &Outcome::Synced);
        assert_eq!(shared.borrow().txn_latencies.len(), 1);
        assert_eq!(shared.borrow().pending_pages, 1);
    }

    #[test]
    fn checkpointer_writes_pending_pages_then_fsyncs() {
        let shared = PgShared::new();
        let mut cp = PgCheckpointer::new(PgConfig::default(), shared.clone(), FileId(1));
        assert!(matches!(
            cp.next(SimTime::ZERO, &Outcome::None),
            ProcAction::Sleep(_)
        ));
        shared.borrow_mut().pending_pages = 2;
        for _ in 0..2 {
            assert!(matches!(
                cp.next(SimTime::ZERO, &Outcome::None),
                ProcAction::Syscall(SyscallKind::Write {
                    file: FileId(1),
                    ..
                })
            ));
        }
        assert!(matches!(
            cp.next(SimTime::ZERO, &Outcome::None),
            ProcAction::Syscall(SyscallKind::Fsync { .. })
        ));
        // Completion rolls straight into the next sleep.
        assert!(matches!(
            cp.next(SimTime::ZERO, &Outcome::Synced),
            ProcAction::Sleep(_)
        ));
        assert_eq!(shared.borrow().checkpoints, 1);
        assert_eq!(shared.borrow().pending_pages, 0);
    }
}
