//! An HDFS-like distributed file system (§7.3): one namenode (block
//! placement), N worker nodes — each a full simulated kernel running
//! Split-Token — and clients whose writes are pipelined to three
//! replicas. The client-to-worker protocol carries the *account* to bill,
//! which joins the per-worker datanode handler into the account's shared
//! token bucket (the paper's modified HDFS protocol).

use std::collections::HashMap;
use std::fmt;

use sim_cache::CacheConfig;
use sim_core::{FileId, KernelId, Pid, SimDuration, SimRng, SimTime};
use sim_kernel::{AppEvent, DeviceKind, InjectTarget, KernelConfig, World};
use split_core::{SchedAttr, SyscallKind};
use split_schedulers::SplitToken;

/// Cluster configuration.
#[derive(Debug, Clone, Copy)]
pub struct DfsConfig {
    /// Worker (datanode) count. The paper uses 7.
    pub workers: usize,
    /// Replication factor (3).
    pub replication: usize,
    /// HDFS block size (64 MB default; 16 MB in Figure 21b).
    pub block_bytes: u64,
    /// Packet size streamed through the pipeline.
    pub packet_bytes: u64,
    /// Worker RAM.
    pub worker_mem: u64,
    /// Worker cores.
    pub worker_cores: u32,
    /// Per-worker backing capacity per client.
    pub backing_bytes: u64,
    /// Placement seed.
    pub seed: u64,
}

impl Default for DfsConfig {
    fn default() -> Self {
        DfsConfig {
            workers: 7,
            replication: 3,
            block_bytes: 64 * 1024 * 1024,
            packet_bytes: 1024 * 1024,
            worker_mem: 512 * 1024 * 1024,
            worker_cores: 32,
            backing_bytes: 8 * 1024 * 1024 * 1024,
            seed: 0xd15,
        }
    }
}

/// A configuration or accounting error from the DFS driver. These used
/// to be silent no-ops; an experiment that misspelled an account id
/// would simply measure an unthrottled cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DfsError {
    /// The cluster has no workers, so a client has nowhere to write.
    NoWorkers,
    /// No client is registered under this account.
    UnknownAccount(u32),
    /// A zero rate cap would park the account's token bucket forever;
    /// reject it rather than silently starving the account.
    ZeroRate(u32),
}

impl fmt::Display for DfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DfsError::NoWorkers => write!(f, "cluster has no workers"),
            DfsError::UnknownAccount(a) => write!(f, "no client under account {a}"),
            DfsError::ZeroRate(a) => write!(f, "zero rate cap for account {a}"),
        }
    }
}

impl std::error::Error for DfsError {}

struct Client {
    account: u32,
    /// Handler pid + backing file + current offset, per worker.
    handlers: Vec<(Pid, FileId, u64)>,
    /// Workers serving the current block.
    replicas: Vec<usize>,
    /// Bytes left in the current block.
    block_left: u64,
    /// Outstanding replica writes for the in-flight packet.
    pending: usize,
    /// Client-visible bytes written (each packet counted once).
    bytes_written: u64,
}

/// A running cluster plus its driver state.
pub struct DfsCluster {
    cfg: DfsConfig,
    /// Worker kernels.
    pub workers: Vec<KernelId>,
    clients: Vec<Client>,
    rng: SimRng,
    /// token -> (client, replica slot)
    inflight: HashMap<u64, usize>,
    next_token: u64,
}

impl DfsCluster {
    /// Build the cluster: `workers` kernels running Split-Token.
    pub fn new(world: &mut World, cfg: DfsConfig) -> Self {
        let mut workers = Vec::new();
        for _ in 0..cfg.workers {
            let k = world.add_kernel(
                KernelConfig {
                    cache: CacheConfig {
                        mem_bytes: cfg.worker_mem,
                        ..Default::default()
                    },
                    cores: cfg.worker_cores,
                    ..Default::default()
                },
                DeviceKind::hdd(),
                Box::new(SplitToken::new()),
            );
            workers.push(k);
        }
        DfsCluster {
            cfg,
            workers,
            clients: Vec::new(),
            rng: SimRng::seed_from_u64(cfg.seed),
            inflight: HashMap::new(),
            next_token: 1,
        }
    }

    /// Add a client writing under `account`. Throttled accounts must then
    /// be configured via [`DfsCluster::set_account_rate`].
    pub fn add_client(&mut self, world: &mut World, account: u32) -> Result<usize, DfsError> {
        if self.workers.is_empty() {
            return Err(DfsError::NoWorkers);
        }
        let mut handlers = Vec::new();
        for &wk in &self.workers {
            let pid = world.spawn_external(wk);
            let file = world.prealloc_file(wk, self.cfg.backing_bytes, true);
            world.configure(wk, pid, SchedAttr::TokenGroup(account));
            handlers.push((pid, file, 0));
        }
        self.clients.push(Client {
            account,
            handlers,
            replicas: Vec::new(),
            block_left: 0,
            pending: 0,
            bytes_written: 0,
        });
        Ok(self.clients.len() - 1)
    }

    /// Cap `account` to `rate` normalized bytes/second *per worker* (the
    /// paper's local rate caps). The account must have at least one
    /// client and the rate must be positive.
    pub fn set_account_rate(
        &mut self,
        world: &mut World,
        account: u32,
        rate: u64,
    ) -> Result<(), DfsError> {
        if rate == 0 {
            return Err(DfsError::ZeroRate(account));
        }
        let Some(ci) = self.clients.iter().position(|c| c.account == account) else {
            return Err(DfsError::UnknownAccount(account));
        };
        // One member per worker is enough: buckets are shared per account.
        for (wi, &wk) in self.workers.iter().enumerate() {
            let (pid, _, _) = self.clients[ci].handlers[wi];
            world.configure(wk, pid, SchedAttr::TokenRate(rate));
        }
        Ok(())
    }

    /// Client-visible bytes written by `client`.
    pub fn bytes_written(&self, client: usize) -> u64 {
        self.clients[client].bytes_written
    }

    /// Total client-visible bytes for an account.
    pub fn account_bytes(&self, account: u32) -> u64 {
        self.clients
            .iter()
            .filter(|c| c.account == account)
            .map(|c| c.bytes_written)
            .sum()
    }

    fn place_block(&mut self, client: usize) {
        let n = self.cfg.workers;
        let mut chosen: Vec<usize> = Vec::new();
        while chosen.len() < self.cfg.replication.min(n) {
            let w = self.rng.gen_range(n as u64) as usize;
            if !chosen.contains(&w) {
                chosen.push(w);
            }
        }
        let c = &mut self.clients[client];
        c.replicas = chosen;
        c.block_left = self.cfg.block_bytes;
    }

    fn send_packet(&mut self, world: &mut World, client: usize) {
        if self.clients[client].block_left == 0 {
            self.place_block(client);
        }
        let packet = self.cfg.packet_bytes.min(self.clients[client].block_left);
        let replicas = self.clients[client].replicas.clone();
        self.clients[client].pending = replicas.len();
        self.clients[client].block_left -= packet;
        self.clients[client].bytes_written += packet;
        for wi in replicas {
            let token = self.next_token;
            self.next_token += 1;
            self.inflight.insert(token, client);
            let (pid, file, offset) = {
                let h = &mut self.clients[client].handlers[wi];
                let r = (h.0, h.1, h.2);
                h.2 = (h.2 + packet) % self.cfg.backing_bytes.saturating_sub(packet).max(1);
                r
            };
            let wk = self.workers[wi];
            world.inject(
                wk,
                pid,
                SyscallKind::Write {
                    file,
                    offset,
                    len: packet,
                },
                InjectTarget::App { token },
            );
        }
    }

    /// Drive the cluster for `duration`: all clients stream continuously.
    pub fn run(&mut self, world: &mut World, duration: SimDuration) {
        let deadline = world.now() + duration;
        for ci in 0..self.clients.len() {
            self.send_packet(world, ci);
        }
        loop {
            let events = world.run_until_app_events(deadline);
            if events.is_empty() {
                break;
            }
            for ev in events {
                if let AppEvent::InjectedDone { token, .. } = ev {
                    let Some(client) = self.inflight.remove(&token) else {
                        continue;
                    };
                    let c = &mut self.clients[client];
                    c.pending -= 1;
                    if c.pending == 0 && world.now() < deadline {
                        self.send_packet(world, client);
                    }
                }
            }
            if world.now() >= deadline {
                break;
            }
        }
    }
}

/// Convenience: time helper for tests.
pub fn secs(s: u64) -> SimDuration {
    SimDuration::from_secs(s)
}

/// Convenience: a `SimTime` at `s` seconds.
pub fn at(s: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replicated_writes_reach_three_workers() {
        let mut w = World::new();
        let cfg = DfsConfig {
            workers: 4,
            block_bytes: 8 * 1024 * 1024,
            ..Default::default()
        };
        let mut cluster = DfsCluster::new(&mut w, cfg);
        let c = cluster.add_client(&mut w, 1).unwrap();
        cluster.run(&mut w, secs(2));
        let written = cluster.bytes_written(c);
        assert!(written > 8 * 1024 * 1024, "client wrote {written}");
        // Aggregate handler-level writes are ~3× the client bytes.
        let mut handler_bytes = 0;
        for (wi, &wk) in cluster.workers.iter().enumerate() {
            let (pid, _, _) = cluster.clients[c].handlers[wi];
            if let Some(st) = w.kernel(wk).stats.proc(pid) {
                handler_bytes += st.write_bytes;
            }
        }
        let ratio = handler_bytes as f64 / written as f64;
        assert!(
            (2.5..=3.1).contains(&ratio),
            "replication factor should be ~3, got {ratio}"
        );
    }

    #[test]
    fn throttled_account_writes_less_than_unthrottled() {
        let mut w = World::new();
        let cfg = DfsConfig {
            workers: 4,
            block_bytes: 8 * 1024 * 1024,
            ..Default::default()
        };
        let mut cluster = DfsCluster::new(&mut w, cfg);
        let slow = cluster.add_client(&mut w, 1).unwrap();
        let fast = cluster.add_client(&mut w, 2).unwrap();
        cluster
            .set_account_rate(&mut w, 1, 2 * 1024 * 1024) // 2 MB/s/worker
            .unwrap();
        cluster.run(&mut w, secs(4));
        let s = cluster.bytes_written(slow);
        let f = cluster.bytes_written(fast);
        assert!(
            f as f64 > 2.0 * s as f64,
            "unthrottled {f} should far exceed throttled {s}"
        );
        assert!(s > 0, "throttled account must still progress");
    }

    #[test]
    fn unknown_account_rate_is_a_typed_error() {
        let mut w = World::new();
        let cfg = DfsConfig {
            workers: 2,
            ..Default::default()
        };
        let mut cluster = DfsCluster::new(&mut w, cfg);
        cluster.add_client(&mut w, 1).unwrap();
        assert_eq!(
            cluster.set_account_rate(&mut w, 99, 1024),
            Err(DfsError::UnknownAccount(99))
        );
    }

    #[test]
    fn zero_rate_is_rejected_before_account_lookup() {
        let mut w = World::new();
        let cfg = DfsConfig {
            workers: 2,
            ..Default::default()
        };
        let mut cluster = DfsCluster::new(&mut w, cfg);
        cluster.add_client(&mut w, 1).unwrap();
        // A zero cap is invalid even for a known account …
        assert_eq!(
            cluster.set_account_rate(&mut w, 1, 0),
            Err(DfsError::ZeroRate(1))
        );
        // … and reported as such for unknown ones too.
        assert_eq!(
            cluster.set_account_rate(&mut w, 7, 0),
            Err(DfsError::ZeroRate(7))
        );
    }

    #[test]
    fn clients_need_workers() {
        let mut w = World::new();
        let cfg = DfsConfig {
            workers: 0,
            ..Default::default()
        };
        let mut cluster = DfsCluster::new(&mut w, cfg);
        assert_eq!(cluster.add_client(&mut w, 1), Err(DfsError::NoWorkers));
    }
}
