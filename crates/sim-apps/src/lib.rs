#![warn(missing_docs)]
//! Applications built on the simulated storage stack, used by §7 of the
//! paper: a SQLite-like embedded database ([`minidb`]), a
//! PostgreSQL/pgbench-like transaction mix ([`pgsim`]), a QEMU-like
//! virtual-machine assembly ([`vmm`]), and an HDFS-like replicated
//! distributed file system ([`dfs`]). The [`net`] module is the fleet
//! network model the `sim-cluster` crate rides on.

pub mod dfs;
pub mod minidb;
pub mod net;
pub mod pgsim;
pub mod vmm;

pub use dfs::{DfsCluster, DfsConfig, DfsError};
pub use minidb::{Checkpointer, MiniDbConfig, MiniDbShared, TxnWorker};
pub use net::NetConfig;
pub use pgsim::{PgCheckpointer, PgConfig, PgShared, PgWorker};
pub use vmm::{launch_guest, GuestConfig, GuestHandle};
