//! A QEMU-like virtual-machine assembly (§7.2).
//!
//! The guest is a complete simulated kernel (vanilla scheduler) whose
//! virtual disk is a file on the host kernel; guest block I/O becomes
//! host file syscalls issued by a per-VM host process — which is exactly
//! the process the host's scheduler throttles, so throttling applies to
//! the whole VM.

use sim_block::Noop;
use sim_cache::CacheConfig;
use sim_core::{FileId, KernelId, Pid};
use sim_kernel::{DeviceKind, KernelConfig, World};
use split_core::BlockOnly;

/// Guest parameters.
#[derive(Debug, Clone, Copy)]
pub struct GuestConfig {
    /// Virtual disk (host file) size.
    pub disk_bytes: u64,
    /// Guest RAM.
    pub mem_bytes: u64,
    /// Guest cores.
    pub cores: u32,
}

impl Default for GuestConfig {
    fn default() -> Self {
        GuestConfig {
            disk_bytes: 4 * 1024 * 1024 * 1024,
            mem_bytes: 256 * 1024 * 1024,
            cores: 4,
        }
    }
}

/// A running guest.
#[derive(Debug, Clone, Copy)]
pub struct GuestHandle {
    /// The guest kernel.
    pub kernel: KernelId,
    /// The host-side VMM process that performs the VM's I/O (throttle
    /// this pid on the host to throttle the whole VM).
    pub vmm_pid: Pid,
    /// The host file backing the virtual disk.
    pub image: FileId,
}

/// Launch a guest on `host`. The guest runs a vanilla kernel (noop block
/// elevator), as in the paper — scheduling happens on the host.
pub fn launch_guest(world: &mut World, host: KernelId, cfg: GuestConfig) -> GuestHandle {
    let image = world.prealloc_file(host, cfg.disk_bytes, true);
    let vmm_pid = world.spawn_external(host);
    let guest = world.add_kernel(
        KernelConfig {
            cache: CacheConfig {
                mem_bytes: cfg.mem_bytes,
                ..Default::default()
            },
            cores: cfg.cores,
            ..Default::default()
        },
        DeviceKind::virtio(host, image, vmm_pid),
        Box::new(BlockOnly::new(Noop::new())),
    );
    GuestHandle {
        kernel: guest,
        vmm_pid,
        image,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::SimDuration;
    use sim_workloads::SeqReader;

    #[test]
    fn guest_io_flows_through_the_host_vmm_process() {
        let mut w = World::new();
        let host = w.add_kernel(
            KernelConfig::default(),
            DeviceKind::hdd(),
            Box::new(BlockOnly::new(Noop::new())),
        );
        let guest = launch_guest(&mut w, host, GuestConfig::default());
        let gfile = w.prealloc_file(guest.kernel, 1024 * 1024 * 1024, true);
        let pid = w.spawn(
            guest.kernel,
            Box::new(SeqReader::new(gfile, 1024 * 1024 * 1024, 256 * 1024)),
        );
        w.run_for(SimDuration::from_secs(1));
        let guest_bytes = w.kernel(guest.kernel).stats.proc(pid).unwrap().read_bytes;
        assert!(guest_bytes > 10 * 1024 * 1024, "guest read {guest_bytes}");
        let host_vmm = w.kernel(host).stats.proc(guest.vmm_pid).unwrap();
        assert!(host_vmm.reads > 0, "host did the I/O for the VMM process");
    }
}
