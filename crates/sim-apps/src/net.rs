//! The cluster network model, factored out of the DFS pipeline.
//!
//! The HDFS layer ([`crate::dfs`]) pipelines packets between kernels with
//! an implicit zero-latency network: an injection lands on the remote
//! worker at the instant it is sent. That is fine for a 7-node figure,
//! but a serving fleet needs real link latency — both for fidelity and
//! because a *positive minimum* link latency is exactly the lookahead
//! that makes conservative parallel DES possible (`sim-cluster` advances
//! shards in windows of one lookahead and routes cross-shard messages at
//! window barriers; see DESIGN §4i).
//!
//! [`NetConfig`] is that model made explicit: one-way shard-to-shard
//! latency, client-edge latency, and an optional per-KiB serialization
//! term. The DFS figure is the degenerate `link_latency = 0` case.

use sim_core::{SimDuration, SimTime};

/// Latency model for the fleet's network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetConfig {
    /// One-way latency between any two shards (kernel instances). The
    /// *minimum* over all links; doubles as the parallel-DES lookahead.
    pub link_latency: SimDuration,
    /// One-way latency between a client and the fleet edge.
    pub client_latency: SimDuration,
    /// Serialization cost per KiB on top of propagation latency.
    pub ns_per_kib: u64,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            // Cross-rack datacenter RTT ~2 ms; one-way 1 ms.
            link_latency: SimDuration::from_millis(1),
            // Clients sit behind the frontend: one-way 2 ms.
            client_latency: SimDuration::from_millis(2),
            ns_per_kib: 0,
        }
    }
}

impl NetConfig {
    /// The conservative-PDES lookahead: no message sent at time `t` can
    /// be *delivered* to another shard before `t + lookahead()`, so
    /// shards may advance one lookahead window independently.
    pub fn lookahead(&self) -> SimDuration {
        self.link_latency
    }

    /// When a `bytes`-sized message sent between shards at `sent` lands.
    pub fn deliver_at(&self, sent: SimTime, bytes: u64) -> SimTime {
        sent + self.link_latency + self.wire(bytes)
    }

    /// When a client message sent at `sent` reaches the fleet edge.
    pub fn client_deliver_at(&self, sent: SimTime, bytes: u64) -> SimTime {
        sent + self.client_latency + self.wire(bytes)
    }

    fn wire(&self, bytes: u64) -> SimDuration {
        SimDuration::from_nanos(bytes.div_ceil(1024).saturating_mul(self.ns_per_kib))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_is_never_before_one_lookahead() {
        let net = NetConfig::default();
        let t = SimTime::from_nanos(5_000_000);
        assert_eq!(net.deliver_at(t, 0), t + net.lookahead());
        assert!(net.deliver_at(t, 4096) >= t + net.lookahead());
    }

    #[test]
    fn serialization_term_scales_with_size() {
        let net = NetConfig {
            ns_per_kib: 1000,
            ..Default::default()
        };
        let t = SimTime::ZERO;
        let small = net.deliver_at(t, 1024);
        let large = net.deliver_at(t, 64 * 1024);
        assert_eq!(
            large.as_nanos() - small.as_nanos(),
            63 * 1000,
            "63 extra KiB at 1 µs each"
        );
    }
}
