//! A SQLite-like embedded key-value store: write-ahead log + lazy
//! checkpointing (§7.1.1).
//!
//! A transaction appends its row updates to the WAL and fsyncs it; the
//! affected database pages are updated in memory (buffered writes to the
//! database file). A separate checkpointer thread flushes and fsyncs the
//! database file whenever the number of dirty buffers crosses a
//! threshold — the knob swept in Figure 18.

use std::cell::RefCell;
use std::rc::Rc;

use sim_core::{FileId, SimDuration, SimRng, SimTime, PAGE_SIZE};
use sim_kernel::{Outcome, ProcAction, ProcessLogic};
use split_core::SyscallKind;

/// Database configuration.
#[derive(Debug, Clone, Copy)]
pub struct MiniDbConfig {
    /// Database file size (table heap).
    pub db_bytes: u64,
    /// Rows (pages) updated per transaction.
    pub rows_per_txn: u64,
    /// WAL bytes appended per transaction.
    pub wal_bytes_per_txn: u64,
    /// Dirty-buffer count that triggers a checkpoint.
    pub checkpoint_threshold: u64,
    /// Think time between transactions.
    pub think: SimDuration,
    /// Seed for the checkpointer's page-selection RNG (0 = historical).
    pub seed: u64,
}

impl Default for MiniDbConfig {
    fn default() -> Self {
        MiniDbConfig {
            db_bytes: 256 * 1024 * 1024,
            rows_per_txn: 8,
            wal_bytes_per_txn: PAGE_SIZE,
            checkpoint_threshold: 1000,
            think: SimDuration::from_millis(1),
            seed: 0,
        }
    }
}

/// State shared between the transaction worker and the checkpointer.
#[derive(Debug)]
pub struct MiniDbShared {
    /// Pages dirtied since the last checkpoint.
    pub dirty_buffers: u64,
    /// Completed transaction latencies (completion time, latency).
    pub txn_latencies: Vec<(SimTime, SimDuration)>,
    /// Checkpoints completed.
    pub checkpoints: u64,
    /// Pages the next checkpoint must write (snapshot at trigger).
    checkpoint_backlog: u64,
}

impl MiniDbShared {
    /// Fresh shared state behind an `Rc<RefCell<…>>`.
    pub fn new() -> Rc<RefCell<MiniDbShared>> {
        Rc::new(RefCell::new(MiniDbShared {
            dirty_buffers: 0,
            txn_latencies: Vec::new(),
            checkpoints: 0,
            checkpoint_backlog: 0,
        }))
    }
}

/// The transaction worker: update rows, append WAL, fsync WAL.
pub struct TxnWorker {
    cfg: MiniDbConfig,
    shared: Rc<RefCell<MiniDbShared>>,
    db_file: FileId,
    wal_file: FileId,
    rng: SimRng,
    wal_offset: u64,
    stage: u8,
    rows_done: u64,
    txn_started: SimTime,
}

impl TxnWorker {
    /// A worker over the given database and WAL files.
    pub fn new(
        cfg: MiniDbConfig,
        shared: Rc<RefCell<MiniDbShared>>,
        db_file: FileId,
        wal_file: FileId,
        seed: u64,
    ) -> Self {
        TxnWorker {
            cfg,
            shared,
            db_file,
            wal_file,
            rng: SimRng::seed_from_u64(seed),
            wal_offset: 0,
            stage: 0,
            rows_done: 0,
            txn_started: SimTime::ZERO,
        }
    }
}

impl ProcessLogic for TxnWorker {
    fn next(&mut self, now: SimTime, _last: &Outcome) -> ProcAction {
        // WAL mode: a transaction touches ONLY the log — the row updates
        // live in the WAL until the checkpointer copies them into the
        // database file. (This is why the checkpoint threshold matters.)
        let _ = &self.db_file;
        let _ = &mut self.rng;
        let _ = &mut self.rows_done;
        match self.stage {
            0 => {
                self.txn_started = now;
                self.stage = 1;
                let a = ProcAction::Syscall(SyscallKind::Write {
                    file: self.wal_file,
                    offset: self.wal_offset,
                    len: self.cfg.wal_bytes_per_txn,
                });
                self.wal_offset =
                    (self.wal_offset + self.cfg.wal_bytes_per_txn) % (64 * 1024 * 1024);
                a
            }
            // WAL appended: make it durable.
            1 => {
                self.stage = 2;
                ProcAction::Syscall(SyscallKind::Fsync {
                    file: self.wal_file,
                })
            }
            // Commit point reached: record latency, think, restart.
            _ => {
                let latency = now.since(self.txn_started);
                {
                    let mut sh = self.shared.borrow_mut();
                    sh.txn_latencies.push((now, latency));
                    sh.dirty_buffers += self.cfg.rows_per_txn;
                }
                self.stage = 0;
                if self.cfg.think > SimDuration::ZERO {
                    ProcAction::Sleep(self.cfg.think)
                } else {
                    self.next(now, _last)
                }
            }
        }
    }
}

/// The checkpointer: when enough WAL frames are pending, copy them into
/// the database file (random-page buffered writes) and fsync it.
pub struct Checkpointer {
    cfg: MiniDbConfig,
    shared: Rc<RefCell<MiniDbShared>>,
    db_file: FileId,
    rng: SimRng,
    stage: u8,
    left: u64,
}

impl Checkpointer {
    /// A checkpointer for the given database file.
    pub fn new(cfg: MiniDbConfig, shared: Rc<RefCell<MiniDbShared>>, db_file: FileId) -> Self {
        Checkpointer {
            cfg,
            shared,
            db_file,
            rng: SimRng::seed_from_u64(cfg.seed ^ 0xc4ec),
            stage: 0,
            left: 0,
        }
    }
}

impl ProcessLogic for Checkpointer {
    fn next(&mut self, _now: SimTime, _last: &Outcome) -> ProcAction {
        match self.stage {
            0 => {
                let trigger = {
                    let mut sh = self.shared.borrow_mut();
                    if sh.dirty_buffers >= self.cfg.checkpoint_threshold {
                        sh.checkpoint_backlog = sh.dirty_buffers;
                        sh.dirty_buffers = 0;
                        true
                    } else {
                        false
                    }
                };
                if trigger {
                    self.left = self.shared.borrow().checkpoint_backlog;
                    self.stage = 1;
                    self.next(_now, _last)
                } else {
                    ProcAction::Sleep(SimDuration::from_millis(10))
                }
            }
            // Copy WAL frames into the database file.
            1 => {
                if self.left > 0 {
                    self.left -= 1;
                    let pages = self.cfg.db_bytes / PAGE_SIZE;
                    let page = self.rng.gen_range(pages);
                    return ProcAction::Syscall(SyscallKind::Write {
                        file: self.db_file,
                        offset: page * PAGE_SIZE,
                        len: PAGE_SIZE,
                    });
                }
                self.stage = 2;
                ProcAction::Syscall(SyscallKind::Fsync { file: self.db_file })
            }
            _ => {
                let mut sh = self.shared.borrow_mut();
                sh.checkpoints += 1;
                sh.checkpoint_backlog = 0;
                drop(sh);
                self.stage = 0;
                ProcAction::Sleep(SimDuration::from_millis(10))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_cycles_wal_append_fsync() {
        let shared = MiniDbShared::new();
        let mut wkr = TxnWorker::new(
            MiniDbConfig {
                rows_per_txn: 1,
                think: SimDuration::ZERO,
                ..Default::default()
            },
            shared.clone(),
            FileId(1),
            FileId(2),
            7,
        );
        // WAL append → fsync (no database-file writes in WAL mode).
        let b = wkr.next(SimTime::ZERO, &Outcome::None);
        assert!(matches!(
            b,
            ProcAction::Syscall(SyscallKind::Write {
                file: FileId(2),
                ..
            })
        ));
        let c = wkr.next(SimTime::ZERO, &Outcome::None);
        assert!(matches!(
            c,
            ProcAction::Syscall(SyscallKind::Fsync { file: FileId(2) })
        ));
        // Commit recorded; dirty WAL frames queue for the checkpointer.
        let _ = wkr.next(SimTime::from_nanos(5_000_000), &Outcome::Synced);
        assert_eq!(shared.borrow().txn_latencies.len(), 1);
        assert_eq!(shared.borrow().dirty_buffers, 1);
    }

    #[test]
    fn checkpointer_copies_backlog_then_fsyncs() {
        let shared = MiniDbShared::new();
        let cfg = MiniDbConfig {
            checkpoint_threshold: 3,
            ..Default::default()
        };
        let mut cp = Checkpointer::new(cfg, shared.clone(), FileId(1));
        assert!(matches!(
            cp.next(SimTime::ZERO, &Outcome::None),
            ProcAction::Sleep(_)
        ));
        shared.borrow_mut().dirty_buffers = 3;
        // Three page copies into the database file…
        for _ in 0..3 {
            assert!(matches!(
                cp.next(SimTime::ZERO, &Outcome::None),
                ProcAction::Syscall(SyscallKind::Write {
                    file: FileId(1),
                    ..
                })
            ));
        }
        // …then the fsync.
        assert!(matches!(
            cp.next(SimTime::ZERO, &Outcome::None),
            ProcAction::Syscall(SyscallKind::Fsync { file: FileId(1) })
        ));
        let _ = cp.next(SimTime::ZERO, &Outcome::Synced);
        assert_eq!(shared.borrow().checkpoints, 1);
        assert_eq!(shared.borrow().dirty_buffers, 0);
    }
}
