//! `split-layered`: the hierarchical multi-tenant layer plane.
//!
//! Production isolation is hierarchical — tenant → service → process —
//! but every scheduler in `split-schedulers` is flat. This crate adds an
//! scx_layered-style layer plane on top of `split-core`'s [`IoSched`]
//! trait (DESIGN §4k):
//!
//! - **Classification** ([`spec`]): cgroup-like [`LayerSpec`] rules
//!   (pid set, registered-name prefix, I/O class, pid modulus) assign
//!   each process to a layer at admission; the mandatory trailing
//!   default layer makes classification total.
//! - **Policy** ([`Layered`]): each layer carries a min-utilization
//!   guarantee, a bandwidth cap, a latency priority, or a plain weighted
//!   share, enforced by the top-level arbiter — itself an [`IoSched`] —
//!   without holding block writes below the journal (paper §3.3).
//! - **Nesting**: each layer hosts an existing child scheduler
//!   (Split-Token, AFQ, CFQ, deadline, …) unchanged; a single-layer
//!   default tree is a verbatim pass-through, proven byte-identical to
//!   the flat child by the equivalence suite.
//! - **Feasibility** ([`solver`]): a weight-redistribution solver
//!   detects infeasible guarantee sets (sum of mins over capacity, one
//!   huge weight stranding capacity behind its own cap) and
//!   renormalizes with a typed [`Adjustment`] report instead of
//!   silently starving layers.
//!
//! [`IoSched`]: split_core::IoSched

pub mod layered;
pub mod solver;
pub mod spec;

pub use layered::{Layered, LayeredConfig};
pub use solver::{solve, Adjustment, FeasibleWeights, LayerEntitlement};
pub use spec::{classify, parse_layers, validate, LayerPolicy, LayerRule, LayerSpec, SpecError};
