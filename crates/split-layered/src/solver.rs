//! The feasible-weights solver.
//!
//! scx_layered's README calls out the *infeasible weights* problem: a
//! guarantee set that cannot be satisfied — the sum of minimum shares
//! exceeding capacity, or one huge weight entitling a layer to more
//! service than its own cap lets it consume, stranding the remainder.
//! Rather than silently starving layers (or panicking), the solver
//! renormalizes the entitlements and reports every adjustment it made as
//! a typed [`Adjustment`] so operators see exactly what they actually
//! got.
//!
//! Inputs are abstract shares of device service: weights (relative),
//! optional minimum shares and optional cap shares (both absolute
//! fractions of capacity). The arbiter derives cap shares from each
//! layer's byte-rate cap and a device-bandwidth hint.

use crate::spec::{LayerPolicy, LayerSpec};
use std::fmt;

/// Solver input for one layer.
#[derive(Debug, Clone)]
pub struct LayerEntitlement {
    /// Layer name (for the report).
    pub name: String,
    /// Relative weight (> 0).
    pub weight: f64,
    /// Guaranteed minimum share of capacity, if any.
    pub min_share: Option<f64>,
    /// Upper bound on the share the layer can use (from its bandwidth
    /// cap), if any.
    pub cap_share: Option<f64>,
}

impl LayerEntitlement {
    /// Derive an entitlement from a spec, translating a byte-rate cap
    /// into a capacity share via the device-bandwidth hint.
    pub fn from_spec(spec: &LayerSpec, bw_hint_bytes_per_sec: u64) -> Self {
        let (min_share, cap_share) = match spec.policy {
            LayerPolicy::MinUtil { share } => (Some(share), None),
            LayerPolicy::BandwidthCap { bytes_per_sec } => (
                None,
                Some((bytes_per_sec as f64 / bw_hint_bytes_per_sec.max(1) as f64).min(1.0)),
            ),
            LayerPolicy::Share | LayerPolicy::LatencyPrio => (None, None),
        };
        LayerEntitlement {
            name: spec.name.clone(),
            weight: spec.weight,
            min_share,
            cap_share,
        }
    }
}

/// One repair the solver applied to make the guarantee set feasible.
#[derive(Debug, Clone, PartialEq)]
pub enum Adjustment {
    /// The minimum shares summed past capacity; all were scaled down
    /// proportionally so every layer keeps a non-zero guarantee.
    MinsRenormalized {
        /// Sum of the requested minimum shares (> 1).
        requested: f64,
        /// Sum actually granted (1.0).
        granted: f64,
    },
    /// A layer's weight entitled it to more than its cap lets it use;
    /// the stranded surplus was redistributed to uncapped layers.
    DominantCapped {
        /// Layer whose entitlement was clipped.
        layer: String,
        /// Share its raw weight asked for.
        raw_share: f64,
        /// Share granted (its cap share).
        granted_share: f64,
    },
    /// A layer's weighted share fell below its guaranteed minimum; it
    /// was raised to the minimum and the others scaled down.
    RaisedToMin {
        /// Layer that was lifted.
        layer: String,
        /// Share its raw weight asked for.
        raw_share: f64,
        /// Share granted (its effective minimum).
        granted_share: f64,
    },
}

impl fmt::Display for Adjustment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Adjustment::MinsRenormalized { requested, granted } => write!(
                f,
                "min shares sum to {requested:.2} > capacity; renormalized to {granted:.2}"
            ),
            Adjustment::DominantCapped {
                layer,
                raw_share,
                granted_share,
            } => write!(
                f,
                "layer '{layer}': weight share {raw_share:.3} exceeds its cap; \
                 clipped to {granted_share:.3}, surplus redistributed"
            ),
            Adjustment::RaisedToMin {
                layer,
                raw_share,
                granted_share,
            } => write!(
                f,
                "layer '{layer}': weight share {raw_share:.3} below guaranteed min; \
                 raised to {granted_share:.3}"
            ),
        }
    }
}

/// Solver output: effective shares and minimums per layer (parallel to
/// the input order) plus the typed repair report.
#[derive(Debug, Clone)]
pub struct FeasibleWeights {
    /// Effective service share per layer (sums to ≤ 1; strictly < 1
    /// only when every layer is capped).
    pub shares: Vec<f64>,
    /// Effective minimum guarantee per layer (0 where none requested).
    pub mins: Vec<f64>,
    /// Every adjustment made; empty when the request was feasible.
    pub adjustments: Vec<Adjustment>,
}

impl FeasibleWeights {
    /// Whether the requested guarantees were feasible as given.
    pub fn feasible(&self) -> bool {
        self.adjustments.is_empty()
    }
}

impl fmt::Display for FeasibleWeights {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.feasible() {
            writeln!(f, "weights feasible as requested")?;
        }
        for a in &self.adjustments {
            writeln!(f, "{a}")?;
        }
        Ok(())
    }
}

/// Solve the entitlement system. Never panics; never returns a zero
/// share for a layer that asked for a minimum.
pub fn solve(inputs: &[LayerEntitlement]) -> FeasibleWeights {
    let n = inputs.len();
    let mut adjustments = Vec::new();
    if n == 0 {
        return FeasibleWeights {
            shares: Vec::new(),
            mins: Vec::new(),
            adjustments,
        };
    }

    // 1. Feasible minimums: scale down proportionally if they oversubscribe.
    let mut mins: Vec<f64> = inputs
        .iter()
        .map(|e| e.min_share.unwrap_or(0.0).max(0.0))
        .collect();
    let min_sum: f64 = mins.iter().sum();
    if min_sum > 1.0 {
        for m in &mut mins {
            *m /= min_sum;
        }
        adjustments.push(Adjustment::MinsRenormalized {
            requested: min_sum,
            granted: 1.0,
        });
    }

    // 2. Raw weighted shares.
    let wsum: f64 = inputs.iter().map(|e| e.weight.max(0.0)).sum();
    let raw: Vec<f64> = if wsum > 0.0 {
        inputs.iter().map(|e| e.weight.max(0.0) / wsum).collect()
    } else {
        vec![1.0 / n as f64; n]
    };
    let mut shares = raw.clone();

    // 3. Water-fill the caps: a capped layer cannot use more than its
    //    cap share, however large its weight; its stranded surplus goes
    //    to the unfixed layers in proportion to their weights.
    let mut fixed = vec![false; n];
    loop {
        let mut clipped_any = false;
        for i in 0..n {
            if fixed[i] {
                continue;
            }
            if let Some(cap) = inputs[i].cap_share {
                let cap = cap.max(mins[i]); // a min dominates a smaller cap
                if shares[i] > cap + 1e-12 {
                    adjustments.push(Adjustment::DominantCapped {
                        layer: inputs[i].name.clone(),
                        raw_share: raw[i],
                        granted_share: cap,
                    });
                    shares[i] = cap;
                    fixed[i] = true;
                    clipped_any = true;
                }
            }
        }
        if !clipped_any {
            break;
        }
        // Redistribute whatever the fixed layers left on the table.
        let fixed_sum: f64 = (0..n).filter(|&i| fixed[i]).map(|i| shares[i]).sum();
        let free_weight: f64 = (0..n)
            .filter(|&i| !fixed[i])
            .map(|i| inputs[i].weight.max(0.0))
            .sum();
        let budget = (1.0 - fixed_sum).max(0.0);
        if free_weight > 0.0 {
            for i in 0..n {
                if !fixed[i] {
                    shares[i] = budget * inputs[i].weight.max(0.0) / free_weight;
                }
            }
        }
    }

    // 4. Honor the minimums: lift deficit layers to their min and scale
    //    the rest down to fit. Cap-clipped layers may shrink here too —
    //    a cap is an upper bound, not an entitlement. Iterate because
    //    lifting one layer can push another below its min.
    let mut min_fixed = vec![false; n];
    for _ in 0..n {
        let mut lifted_any = false;
        for i in 0..n {
            if !min_fixed[i] && shares[i] + 1e-12 < mins[i] {
                adjustments.push(Adjustment::RaisedToMin {
                    layer: inputs[i].name.clone(),
                    raw_share: shares[i],
                    granted_share: mins[i],
                });
                shares[i] = mins[i];
                min_fixed[i] = true;
                lifted_any = true;
            }
        }
        if !lifted_any {
            break;
        }
        let fixed_sum: f64 = (0..n).filter(|&i| min_fixed[i]).map(|i| shares[i]).sum();
        let free_sum: f64 = (0..n).filter(|&i| !min_fixed[i]).map(|i| shares[i]).sum();
        let budget = (1.0 - fixed_sum).max(0.0);
        if free_sum > 0.0 {
            let scale = budget / free_sum;
            for i in 0..n {
                if !min_fixed[i] {
                    shares[i] *= scale;
                }
            }
        }
    }

    FeasibleWeights {
        shares,
        mins,
        adjustments,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ent(name: &str, weight: f64, min: Option<f64>, cap: Option<f64>) -> LayerEntitlement {
        LayerEntitlement {
            name: name.to_string(),
            weight,
            min_share: min,
            cap_share: cap,
        }
    }

    #[test]
    fn feasible_request_passes_through_untouched() {
        let fw = solve(&[ent("a", 1.0, Some(0.2), None), ent("b", 3.0, None, None)]);
        assert!(fw.feasible());
        assert!((fw.shares[0] - 0.25).abs() < 1e-9);
        assert!((fw.shares[1] - 0.75).abs() < 1e-9);
        assert_eq!(fw.mins, vec![0.2, 0.0]);
    }

    #[test]
    fn sum_of_mins_over_capacity_renormalizes_without_starving() {
        // 0.6 + 0.6 + 0.3 = 1.5 of capacity requested as guarantees.
        let fw = solve(&[
            ent("a", 1.0, Some(0.6), None),
            ent("b", 1.0, Some(0.6), None),
            ent("c", 1.0, Some(0.3), None),
        ]);
        assert!(!fw.feasible());
        assert!(fw.adjustments.iter().any(
            |a| matches!(a, Adjustment::MinsRenormalized { requested, granted }
                if (*requested - 1.5).abs() < 1e-9 && *granted == 1.0)
        ));
        // Scaled proportionally: 0.4 / 0.4 / 0.2 — nobody starved.
        assert!((fw.mins[0] - 0.4).abs() < 1e-9);
        assert!((fw.mins[1] - 0.4).abs() < 1e-9);
        assert!((fw.mins[2] - 0.2).abs() < 1e-9);
        assert!(fw.mins.iter().all(|&m| m > 0.0));
        let total: f64 = fw.shares.iter().sum();
        assert!(total <= 1.0 + 1e-9);
    }

    #[test]
    fn single_dominant_weight_cannot_strand_capacity_past_its_cap() {
        // One layer with an absurd weight but capped at 30% of the
        // device: its raw entitlement (~1.0) would strand 70% of the
        // capacity it can never use. The solver clips it to the cap and
        // hands the surplus to the others.
        let fw = solve(&[
            ent("whale", 1e9, None, Some(0.3)),
            ent("a", 1.0, None, None),
            ent("b", 1.0, None, None),
        ]);
        assert!(!fw.feasible());
        assert!(fw.adjustments.iter().any(
            |a| matches!(a, Adjustment::DominantCapped { layer, granted_share, .. }
                if layer == "whale" && (*granted_share - 0.3).abs() < 1e-9)
        ));
        assert!((fw.shares[0] - 0.3).abs() < 1e-9);
        assert!((fw.shares[1] - 0.35).abs() < 1e-9);
        assert!((fw.shares[2] - 0.35).abs() < 1e-9);
    }

    #[test]
    fn dominant_weight_with_minimums_on_the_rest() {
        // The huge-weight layer is uncapped, but the small layers hold
        // minimum guarantees; they must not be starved to ~0.
        let fw = solve(&[
            ent("whale", 1e6, None, None),
            ent("a", 1.0, Some(0.2), None),
            ent("b", 1.0, Some(0.2), None),
        ]);
        assert!(!fw.feasible());
        assert!(fw.shares[1] >= 0.2 - 1e-9);
        assert!(fw.shares[2] >= 0.2 - 1e-9);
        assert!((fw.shares[0] - 0.6).abs() < 1e-6);
        assert_eq!(
            fw.adjustments
                .iter()
                .filter(|a| matches!(a, Adjustment::RaisedToMin { .. }))
                .count(),
            2
        );
    }

    #[test]
    fn all_layers_capped_leaves_headroom_unclaimed() {
        let fw = solve(&[
            ent("a", 1.0, None, Some(0.2)),
            ent("b", 1.0, None, Some(0.2)),
        ]);
        let total: f64 = fw.shares.iter().sum();
        assert!((total - 0.4).abs() < 1e-9);
    }

    #[test]
    fn zero_weights_fall_back_to_equal_shares() {
        let fw = solve(&[ent("a", 0.0, None, None), ent("b", 0.0, None, None)]);
        assert!((fw.shares[0] - 0.5).abs() < 1e-9);
        assert!((fw.shares[1] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn report_renders() {
        let fw = solve(&[
            ent("whale", 1e9, None, Some(0.3)),
            ent("a", 1.0, Some(0.9), None),
            ent("b", 1.0, Some(0.9), None),
        ]);
        let text = fw.to_string();
        assert!(text.contains("renormalized"));
        assert!(text.contains("whale"));
    }
}
