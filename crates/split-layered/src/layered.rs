//! The hierarchical layer arbiter: an [`IoSched`] that classifies
//! processes into layers, hosts an existing child scheduler inside each
//! layer, and enforces per-layer policies on top of whatever the
//! children decide.
//!
//! Policy enforcement follows the split-level discipline throughout
//! (paper §3.3): bandwidth caps gate *write-like syscalls* at admission
//! and throttle *block reads* at dispatch, but never hold a block write
//! below the journal — delaying an entangled data write would stall
//! every tenant's fsync through the shared transaction. Per-layer dirty
//! budgets bound how much write-behind a noisy layer can pile into the
//! shared journal in the first place.

use crate::solver::{solve, FeasibleWeights, LayerEntitlement};
use crate::spec::{validate, LayerPolicy, LayerRule, LayerSpec, SpecError};
use sim_block::{Dispatch, PrioClass, ReqKind, Request};
use sim_core::{FileId, Pid, RequestId, SimDuration, SimTime, PAGE_SIZE};
use split_core::{
    BufferDirtied, BufferFreed, Gate, IoSched, SchedAttr, SchedCtx, SyscallInfo, SyscallKind,
};
use std::collections::{HashMap, VecDeque};

/// Arbiter-level tunables.
#[derive(Debug, Clone, Copy)]
pub struct LayeredConfig {
    /// Device-bandwidth hint used to translate byte-rate caps into
    /// capacity shares for the feasibility solver.
    pub bw_hint: u64,
    /// Total dirty-page budget split across layers by share; a layer
    /// over its slice has write syscalls held while the arbiter kicks
    /// writeback. `None` disables per-layer dirty budgeting.
    pub dirty_budget: Option<u64>,
    /// Window over which per-layer utilization shares are measured for
    /// the min-utilization guarantee.
    pub util_window: SimDuration,
    /// Re-check cadence while writers are held on a dirty budget.
    pub poll_interval: SimDuration,
    /// Planted cap-leak bug for mutation tests: every Nth bucket charge
    /// is skipped, letting a capped layer exceed its bandwidth. The
    /// `LayerAuditor` must catch this. Never set outside tests.
    pub cap_leak_every: Option<u64>,
    /// Eager-writeback threshold for non-latency layers, active only
    /// when the tree has a latency layer. The shared journal runs in
    /// ordered mode, so a latency tenant's commit must flush *every*
    /// writer's dirty data first (the Figure 4 entanglement); keeping
    /// other layers' dirty sets near zero is the only dispatch-side
    /// lever on that tail. Once a non-latency layer's dirty bytes reach
    /// this threshold the arbiter kicks targeted writeback. `None`
    /// disables the mechanism.
    pub eager_wb_bytes: Option<u64>,
}

impl Default for LayeredConfig {
    fn default() -> Self {
        LayeredConfig {
            bw_hint: 128 * 1024 * 1024,
            dirty_budget: None,
            util_window: SimDuration::from_millis(100),
            poll_interval: SimDuration::from_millis(2),
            cap_leak_every: None,
            eager_wb_bytes: Some(256 * 1024),
        }
    }
}

/// Token bucket enforcing a layer's bandwidth cap, in bytes.
#[derive(Debug, Clone, Copy)]
struct Bucket {
    rate: f64,
    burst: f64,
    balance: f64,
    last: SimTime,
}

impl Bucket {
    fn new(bytes_per_sec: u64) -> Self {
        // One second of burst: small enough that the auditor's window
        // bound is tight, large enough not to chop single syscalls.
        let rate = bytes_per_sec as f64;
        Bucket {
            rate,
            burst: rate,
            balance: rate,
            last: SimTime::ZERO,
        }
    }

    fn refill(&mut self, now: SimTime) {
        if now > self.last {
            let dt = (now.as_nanos() - self.last.as_nanos()) as f64 / 1e9;
            self.balance = (self.balance + self.rate * dt).min(self.burst);
            self.last = now;
        }
    }

    fn affordable(&self, bytes: u64) -> bool {
        self.balance >= bytes as f64
    }

    fn charge(&mut self, bytes: u64) {
        self.balance -= bytes as f64;
    }

    fn refund(&mut self, bytes: u64) {
        self.balance = (self.balance + bytes as f64).min(self.burst);
    }

    /// When `bytes` will be affordable at the current rate.
    fn ready_at(&self, now: SimTime, bytes: u64) -> SimTime {
        let deficit = (bytes as f64 - self.balance).max(0.0);
        let ns = (deficit / self.rate * 1e9).ceil() as u64;
        now + SimDuration::from_nanos(ns.max(1))
    }
}

struct Layer {
    spec: LayerSpec,
    child: Box<dyn IoSched>,
    bucket: Option<Bucket>,
    /// Cumulative dispatched bytes / effective share — the deficit
    /// round-robin virtual service clock.
    vsrv: f64,
    /// Utilization windows (bytes dispatched), rolled lazily.
    win_cur: u64,
    win_prev: u64,
    /// Dirty bytes attributed to this layer (charged at buffer-dirty,
    /// revised at data-write dispatch, split-token style).
    dirty_bytes: u64,
    /// Reads the arbiter withheld — over the layer's cap, or parked
    /// behind a latency-layer fsync (the boost window).
    parked: VecDeque<Request>,
    /// Requests this layer has at the device right now.
    in_flight: u32,
}

impl Layer {
    fn latency_prio(&self) -> bool {
        self.spec.policy == LayerPolicy::LatencyPrio
    }
}

/// The hierarchical layer plane: one `IoSched` wrapping a tree of child
/// schedulers, one per layer.
pub struct Layered {
    cfg: LayeredConfig,
    layers: Vec<Layer>,
    /// Solver output: effective share and min per layer, plus report.
    report: FeasibleWeights,
    /// Process → layer, fixed at admission.
    assign: HashMap<Pid, usize>,
    /// Names registered via `SchedAttr::ProcName` before admission.
    names: HashMap<Pid, &'static str>,
    /// I/O classes seen via `SchedAttr::Prio` before admission.
    classes: HashMap<Pid, PrioClass>,
    /// In-flight request → layer, for completion routing.
    req_layer: HashMap<RequestId, usize>,
    /// Writers held at the gate by a bandwidth cap: (pid, bytes, layer).
    cap_held: VecDeque<(Pid, u64, usize)>,
    /// Writers held at the gate by the dirty budget: (pid, layer).
    dirty_held: VecDeque<(Pid, usize)>,
    /// Non-latency writers held at the gate for the duration of a
    /// latency-layer fsync (released when the boost window closes).
    boost_held: VecDeque<Pid>,
    /// Eager-writeback kicks deferred past the boost window: issuing
    /// flush traffic mid-commit interleaves seeks with the journal
    /// writes the latency tenant is waiting on.
    wb_deferred: Vec<(FileId, usize)>,
    /// Earliest armed arbiter timer, to avoid re-arming storms.
    timer_at: Option<SimTime>,
    /// Window bookkeeping.
    win_start: SimTime,
    win_total_cur: u64,
    win_total_prev: u64,
    /// Latency-layer fsyncs currently inside the syscall layer. While
    /// nonzero, non-latency data *reads* are parked at dispatch: a read
    /// is never part of an fsync's dependency set (Figure 5), but every
    /// queued write may be — the journal commit's ordered flush must not
    /// interleave with scan traffic while a latency tenant waits.
    fsync_boost: u32,
    /// Whether any layer has latency priority (precomputed; gates the
    /// eager-writeback and queue-reservation disciplines).
    has_latency: bool,
    /// Single layer, no cap, no budget: forward everything verbatim.
    passthrough: bool,
    /// Dispatch candidate ordering scratch (no per-call allocation).
    order: Vec<usize>,
    /// Cap-leak mutation counter (see `LayeredConfig::cap_leak_every`).
    leak_tick: u64,
}

impl Layered {
    /// Build the tree. `resolve` maps a child scheduler name to an
    /// instance; returning `None` rejects the spec (unknown child).
    pub fn build(
        specs: Vec<LayerSpec>,
        cfg: LayeredConfig,
        resolve: &mut dyn FnMut(&str) -> Option<Box<dyn IoSched>>,
    ) -> Result<Layered, SpecError> {
        validate(&specs)?;
        let ents: Vec<LayerEntitlement> = specs
            .iter()
            .map(|s| LayerEntitlement::from_spec(s, cfg.bw_hint))
            .collect();
        let report = solve(&ents);
        let mut layers = Vec::with_capacity(specs.len());
        for spec in specs {
            let child =
                resolve(&spec.child).ok_or_else(|| SpecError::UnknownChild(spec.child.clone()))?;
            let bucket = match spec.policy {
                LayerPolicy::BandwidthCap { bytes_per_sec } => Some(Bucket::new(bytes_per_sec)),
                _ => None,
            };
            layers.push(Layer {
                spec,
                child,
                bucket,
                vsrv: 0.0,
                win_cur: 0,
                win_prev: 0,
                dirty_bytes: 0,
                parked: VecDeque::new(),
                in_flight: 0,
            });
        }
        let passthrough =
            layers.len() == 1 && layers[0].bucket.is_none() && cfg.dirty_budget.is_none();
        let n = layers.len();
        let has_latency = layers.iter().any(|l| l.latency_prio());
        Ok(Layered {
            cfg,
            layers,
            has_latency,
            report,
            assign: HashMap::new(),
            names: HashMap::new(),
            classes: HashMap::new(),
            req_layer: HashMap::new(),
            cap_held: VecDeque::new(),
            dirty_held: VecDeque::new(),
            boost_held: VecDeque::new(),
            wb_deferred: Vec::new(),
            timer_at: None,
            win_start: SimTime::ZERO,
            win_total_cur: 0,
            win_total_prev: 0,
            fsync_boost: 0,
            passthrough,
            order: Vec::with_capacity(n),
            leak_tick: 0,
        })
    }

    /// A degenerate single-layer tree around one child: the identity
    /// wrapper the equivalence tests prove byte-identical to flat.
    pub fn single(child: Box<dyn IoSched>) -> Layered {
        let spec = LayerSpec::new("all", LayerRule::Default, child.name());
        let mut child = Some(child);
        Layered::build(vec![spec], LayeredConfig::default(), &mut |_| child.take())
            .expect("single-layer spec is always valid")
    }

    /// The feasibility solver's verdict on this tree.
    pub fn feasibility(&self) -> &FeasibleWeights {
        &self.report
    }

    /// Layer names in tree order (reports, tests).
    pub fn layer_names(&self) -> Vec<&str> {
        self.layers.iter().map(|l| l.spec.name.as_str()).collect()
    }

    fn classify_pid(&mut self, pid: Pid) -> usize {
        if let Some(&i) = self.assign.get(&pid) {
            return i;
        }
        let specs: Vec<&LayerSpec> = self.layers.iter().map(|l| &l.spec).collect();
        let name = self.names.get(&pid).copied();
        let class = self.classes.get(&pid).copied();
        let i = specs
            .iter()
            .position(|s| s.rule.matches(pid, name, class))
            .unwrap_or(specs.len() - 1);
        self.assign.insert(pid, i);
        i
    }

    /// Route a block request to a layer. Latency inheritance first: if
    /// any entangled cause belongs to a latency layer, the request rides
    /// that layer — a shared journal commit a latency tenant's fsync
    /// waits on must not queue behind bulk traffic (the cause-tag
    /// analogue of priority inheritance). Otherwise shared
    /// journal/metadata I/O goes to the default (last) layer, and data
    /// routes by its first classified cause, then by submitter, then
    /// default.
    fn layer_of_req(&mut self, req: &Request) -> usize {
        for &pid in req.causes.as_slice() {
            if let Some(&i) = self.assign.get(&pid) {
                if self.layers[i].latency_prio() {
                    return i;
                }
            }
        }
        if req.kind != ReqKind::Data {
            return self.layers.len() - 1;
        }
        for &pid in req.causes.as_slice() {
            if let Some(&i) = self.assign.get(&pid) {
                return i;
            }
        }
        if let Some(&i) = self.assign.get(&req.submitter) {
            return i;
        }
        self.layers.len() - 1
    }

    fn layer_of_causes(&self, causes: &sim_core::CauseSet) -> usize {
        for &pid in causes.as_slice() {
            if let Some(&i) = self.assign.get(&pid) {
                return i;
            }
        }
        self.layers.len() - 1
    }

    fn roll_windows(&mut self, now: SimTime) {
        let w = self.cfg.util_window.as_nanos().max(1);
        let start = self.win_start.as_nanos();
        if now.as_nanos() >= start + w {
            let gap = (now.as_nanos() - start) / w;
            if gap >= 2 {
                // Idle gap: both windows are stale.
                for l in &mut self.layers {
                    l.win_prev = 0;
                    l.win_cur = 0;
                }
                self.win_total_prev = 0;
                self.win_total_cur = 0;
            } else {
                for l in &mut self.layers {
                    l.win_prev = l.win_cur;
                    l.win_cur = 0;
                }
                self.win_total_prev = self.win_total_cur;
                self.win_total_cur = 0;
            }
            self.win_start = SimTime::from_nanos(start + gap * w);
        }
    }

    fn util_share(&self, i: usize) -> f64 {
        let total = self.win_total_prev + self.win_total_cur;
        if total == 0 {
            return 1.0; // nothing dispatched: nobody is in deficit
        }
        (self.layers[i].win_prev + self.layers[i].win_cur) as f64 / total as f64
    }

    fn dirty_budget_of(&self, i: usize) -> Option<u64> {
        self.cfg
            .dirty_budget
            .map(|total| (total as f64 * self.report.shares[i]).max(PAGE_SIZE as f64) as u64)
    }

    fn arm_timer(&mut self, at: SimTime, ctx: &mut SchedCtx<'_>) {
        let due = match self.timer_at {
            Some(t) if t > ctx.now && t <= at => return,
            _ => at,
        };
        self.timer_at = Some(due);
        ctx.set_timer(due);
    }

    /// Charge `bytes` to layer `i`'s cap bucket, unless the planted
    /// cap-leak bug (mutation testing) swallows this charge.
    fn charge_cap(&mut self, i: usize, bytes: u64) {
        if let Some(every) = self.cfg.cap_leak_every {
            self.leak_tick += 1;
            if self.leak_tick.is_multiple_of(every) {
                return; // the bug: admitted but never charged
            }
        }
        if let Some(b) = self.layers[i].bucket.as_mut() {
            b.charge(bytes);
        }
    }

    /// Release gate-held writers whose constraint has cleared.
    fn release_held(&mut self, ctx: &mut SchedCtx<'_>) {
        let now = ctx.now;
        // Bandwidth-cap holds: FIFO per layer; stop at the first pid a
        // layer still cannot afford so release order stays fair.
        let mut blocked: u32 = 0; // bitmask of layers already blocked
        let mut k = 0;
        while k < self.cap_held.len() {
            let (pid, bytes, li) = self.cap_held[k];
            let bit = 1u32 << (li as u32 % 32);
            let affordable = {
                let b = self.layers[li]
                    .bucket
                    .as_mut()
                    .expect("cap-held implies bucket");
                b.refill(now);
                b.affordable(bytes)
            };
            if blocked & bit == 0 && affordable {
                self.charge_cap(li, bytes);
                ctx.wake(pid);
                self.cap_held.remove(k);
            } else {
                blocked |= bit;
                k += 1;
            }
        }
        // Dirty-budget holds.
        let mut k = 0;
        while k < self.dirty_held.len() {
            let (pid, li) = self.dirty_held[k];
            let under = match self.dirty_budget_of(li) {
                Some(budget) => self.layers[li].dirty_bytes <= budget,
                None => true,
            };
            if under {
                ctx.wake(pid);
                self.dirty_held.remove(k);
            } else {
                k += 1;
            }
        }
        // Keep a poll timer alive while anyone is still held.
        if let Some(&(_, bytes, li)) = self.cap_held.front() {
            let b = self.layers[li].bucket.as_ref().expect("bucket");
            let at = b.ready_at(now, bytes);
            self.arm_timer(at, ctx);
        }
        if !self.dirty_held.is_empty() {
            let at = now + self.cfg.poll_interval;
            self.arm_timer(at, ctx);
        }
    }

    fn sample_gauges(&self, ctx: &SchedCtx<'_>) {
        let tr = ctx.tracer();
        if !tr.enabled() {
            return;
        }
        let now = ctx.now;
        for (i, l) in self.layers.iter().enumerate() {
            tr.gauge_key("layered.util_share", i as u64, now, self.util_share(i));
            tr.gauge_key("layered.dirty_bytes", i as u64, now, l.dirty_bytes as f64);
            if let Some(b) = l.bucket.as_ref() {
                tr.gauge_key("layered.cap_balance", i as u64, now, b.balance);
            }
        }
    }
}

impl IoSched for Layered {
    fn name(&self) -> &'static str {
        "layered"
    }

    fn configure(&mut self, pid: Pid, attr: SchedAttr) {
        if self.passthrough {
            self.layers[0].child.configure(pid, attr);
            return;
        }
        match attr {
            SchedAttr::ProcName(n) => {
                // Admission metadata; meaningful only before first I/O.
                self.names.insert(pid, n);
            }
            SchedAttr::Prio(p) => {
                self.classes.entry(pid).or_insert(p.class);
                let i = self.classify_pid(pid);
                self.layers[i].child.configure(pid, attr);
            }
            _ => {
                let i = self.classify_pid(pid);
                self.layers[i].child.configure(pid, attr);
            }
        }
    }

    fn syscall_enter(&mut self, sc: &SyscallInfo, ctx: &mut SchedCtx<'_>) -> Gate {
        if self.passthrough {
            return self.layers[0].child.syscall_enter(sc, ctx);
        }
        self.classes.entry(sc.pid).or_insert(sc.ioprio.class);
        let i = self.classify_pid(sc.pid);
        if matches!(sc.kind, SyscallKind::Fsync { .. }) && self.layers[i].latency_prio() {
            self.fsync_boost += 1;
        }
        if sc.kind.is_write_like() {
            let bytes = match sc.kind {
                SyscallKind::Write { len, .. } => len,
                _ => 0,
            };
            // Bandwidth cap: admission control on write bytes. Fsync and
            // metadata ops carry no payload and are never held here.
            if bytes > 0 {
                if let Some(b) = self.layers[i].bucket.as_mut() {
                    b.refill(ctx.now);
                    if !b.affordable(bytes) {
                        let at = b.ready_at(ctx.now, bytes);
                        self.cap_held.push_back((sc.pid, bytes, i));
                        self.arm_timer(at, ctx);
                        return Gate::Hold;
                    }
                    self.charge_cap(i, bytes);
                }
                // Dirty budget: a layer over its slice of the dirty pool
                // must wait for its own writeback, not push more into the
                // shared journal.
                if let Some(budget) = self.dirty_budget_of(i) {
                    if self.layers[i].dirty_bytes > budget {
                        let excess = self.layers[i].dirty_bytes - budget;
                        let pages = (excess / PAGE_SIZE + 16).max(32);
                        ctx.start_writeback(None, pages);
                        self.dirty_held.push_back((sc.pid, i));
                        let at = ctx.now + self.cfg.poll_interval;
                        self.arm_timer(at, ctx);
                        return Gate::Hold;
                    }
                }
                // Boost window: a latency fsync is committing. Dirtying
                // more data now would spawn flush traffic that seeks
                // against the very journal writes the fsync waits on,
                // so non-latency writers pause until it exits. The cap
                // was already charged; the wake resumes the syscall
                // without re-entering this gate.
                if self.fsync_boost > 0 && !self.layers[i].latency_prio() {
                    self.boost_held.push_back(sc.pid);
                    return Gate::Hold;
                }
            }
        }
        self.layers[i].child.syscall_enter(sc, ctx)
    }

    fn syscall_exit(&mut self, sc: &SyscallInfo, ctx: &mut SchedCtx<'_>) {
        if self.passthrough {
            return self.layers[0].child.syscall_exit(sc, ctx);
        }
        let i = self.classify_pid(sc.pid);
        if matches!(sc.kind, SyscallKind::Fsync { .. }) && self.layers[i].latency_prio() {
            self.fsync_boost = self.fsync_boost.saturating_sub(1);
            if self.fsync_boost == 0 {
                // The boost window closed: resume held writers, kick
                // deferred writeback, and let parked reads go.
                while let Some(pid) = self.boost_held.pop_front() {
                    ctx.wake(pid);
                }
                for (file, li) in std::mem::take(&mut self.wb_deferred) {
                    let pages = self.layers[li].dirty_bytes / PAGE_SIZE + 1;
                    ctx.start_writeback(Some(file), pages);
                }
                if self.layers.iter().any(|l| !l.parked.is_empty()) {
                    ctx.kick_dispatch();
                }
            }
        }
        self.layers[i].child.syscall_exit(sc, ctx)
    }

    fn buffer_dirtied(&mut self, ev: &BufferDirtied, ctx: &mut SchedCtx<'_>) {
        if self.passthrough {
            return self.layers[0].child.buffer_dirtied(ev, ctx);
        }
        let i = self.layer_of_causes(&ev.causes);
        self.layers[i].dirty_bytes += ev.new_bytes;
        // Entanglement control: a latency layer's fsync commit flushes
        // every ordered file's dirty data, so other layers' dirty pages
        // are latent commit work. Write them back eagerly.
        if let Some(threshold) = self.cfg.eager_wb_bytes {
            if self.has_latency
                && !self.layers[i].latency_prio()
                && self.layers[i].dirty_bytes >= threshold
            {
                if self.fsync_boost > 0 {
                    // Mid-commit flush traffic would interleave with the
                    // journal writes; kick it when the boost closes.
                    if !self.wb_deferred.iter().any(|(f, _)| *f == ev.file) {
                        self.wb_deferred.push((ev.file, i));
                    }
                } else {
                    let pages = self.layers[i].dirty_bytes / PAGE_SIZE + 1;
                    ctx.start_writeback(Some(ev.file), pages);
                }
            }
        }
        self.layers[i].child.buffer_dirtied(ev, ctx)
    }

    fn buffer_freed(&mut self, ev: &BufferFreed, ctx: &mut SchedCtx<'_>) {
        if self.passthrough {
            return self.layers[0].child.buffer_freed(ev, ctx);
        }
        let i = self.layer_of_causes(&ev.causes);
        self.layers[i].dirty_bytes = self.layers[i].dirty_bytes.saturating_sub(ev.bytes);
        self.layers[i].child.buffer_freed(ev, ctx);
        if !self.dirty_held.is_empty() {
            self.release_held(ctx);
        }
    }

    fn block_add(&mut self, req: Request, ctx: &mut SchedCtx<'_>) {
        if self.passthrough {
            return self.layers[0].child.block_add(req, ctx);
        }
        let i = self.layer_of_req(&req);
        self.req_layer.insert(req.id, i);
        self.layers[i].child.block_add(req, ctx)
    }

    fn block_dispatch(&mut self, ctx: &mut SchedCtx<'_>) -> Dispatch {
        if self.passthrough {
            return self.layers[0].child.block_dispatch(ctx);
        }
        let now = ctx.now;
        self.roll_windows(now);
        for l in &mut self.layers {
            if let Some(b) = l.bucket.as_mut() {
                b.refill(now);
            }
        }

        // Candidate order: latency layers first, then min-utilization
        // layers still under their guarantee, then everyone else by the
        // deficit round-robin clock. Ties break by tree order.
        let mut order = std::mem::take(&mut self.order);
        order.clear();
        order.extend(0..self.layers.len());
        {
            let rank = |i: usize| -> (u8, f64, usize) {
                let l = &self.layers[i];
                if l.latency_prio() {
                    (0, 0.0, i)
                } else if self.report.mins[i] > 0.0 && self.util_share(i) < self.report.mins[i] {
                    (1, 0.0, i)
                } else {
                    (2, l.vsrv, i)
                }
            };
            order.sort_by(|&a, &b| {
                let (ca, va, ia) = rank(a);
                let (cb, vb, ib) = rank(b);
                ca.cmp(&cb).then(va.total_cmp(&vb)).then(ia.cmp(&ib))
            });
        }

        let mut wait: Option<SimTime> = None;
        let note_wait = |w: &mut Option<SimTime>, t: SimTime| {
            *w = Some(match *w {
                Some(cur) if cur <= t => cur,
                _ => t,
            });
        };
        let depth = ctx.occupancy().map(|o| o.depth);
        let mut issued: Option<Request> = None;
        for &i in &order {
            // Occupancy-aware slot cap on the queued plane: a
            // non-latency layer may not hog the hardware queue past its
            // share of the slots. When the tree has a latency layer the
            // queue is reserved for it outright — each slot another
            // layer holds is up to one full seek of added fsync tail
            // (an issued request cannot be recalled, Figure 1) — so all
            // other layers together pipeline a single request, which
            // restores the serial plane's one-quantum blocking bound.
            if let Some(d) = depth {
                if !self.layers[i].latency_prio() && d > 1 {
                    if self.has_latency {
                        let others: u32 = self
                            .layers
                            .iter()
                            .filter(|l| !l.latency_prio())
                            .map(|l| l.in_flight)
                            .sum();
                        if others >= 1 {
                            continue;
                        }
                    } else {
                        let limit = ((self.report.shares[i] * d as f64).ceil() as u32).max(1);
                        if self.layers[i].in_flight >= limit {
                            continue;
                        }
                    }
                }
            }
            let boosted_past = self.fsync_boost > 0 && !self.layers[i].latency_prio();
            // A parked read goes first once its hold has cleared: the
            // bucket can afford it and no latency fsync is in flight.
            if let Some(front_bytes) = self.layers[i].parked.front().map(|r| r.bytes()) {
                if boosted_past {
                    // Woken by kick_dispatch when the fsync exits.
                    continue;
                }
                match self.layers[i].bucket.as_ref() {
                    Some(b) if !b.affordable(front_bytes) => {
                        let at = b.ready_at(now, front_bytes);
                        note_wait(&mut wait, at);
                        continue;
                    }
                    Some(_) => self.charge_cap(i, front_bytes),
                    None => {}
                }
                issued = self.layers[i].parked.pop_front();
                break;
            }
            match self.layers[i].child.block_dispatch(ctx) {
                Dispatch::Issue(req) => {
                    // Cap discipline: reads are throttled here; writes
                    // are never held below the journal (they were
                    // admission-gated at the syscall). Reads also park
                    // for the duration of a latency-layer fsync — they
                    // are never part of its dependency set, but the
                    // writes behind them may be.
                    if req.is_read() {
                        if boosted_past {
                            self.layers[i].parked.push_back(req);
                            continue;
                        }
                        if let Some(b) = self.layers[i].bucket.as_ref() {
                            if !b.affordable(req.bytes()) {
                                let at = b.ready_at(now, req.bytes());
                                self.layers[i].parked.push_back(req);
                                note_wait(&mut wait, at);
                                continue;
                            }
                            let bytes = req.bytes();
                            self.charge_cap(i, bytes);
                        }
                    }
                    issued = Some(req);
                    break;
                }
                Dispatch::WaitUntil(t) => {
                    note_wait(&mut wait, t);
                }
                Dispatch::Idle => {}
            }
        }
        self.order = order;

        match issued {
            Some(req) => {
                let i = *self
                    .req_layer
                    .get(&req.id)
                    .unwrap_or(&(self.layers.len() - 1));
                let bytes = req.bytes();
                let share = self.report.shares[i].max(1e-6);
                self.layers[i].vsrv += bytes as f64 / share;
                self.layers[i].win_cur += bytes;
                self.win_total_cur += bytes;
                self.layers[i].in_flight += 1;
                if req.kind == ReqKind::Data && !req.is_read() {
                    self.layers[i].dirty_bytes = self.layers[i].dirty_bytes.saturating_sub(bytes);
                    if !self.dirty_held.is_empty() {
                        self.release_held(ctx);
                    }
                }
                self.sample_gauges(ctx);
                Dispatch::Issue(req)
            }
            None => match wait {
                Some(t) => Dispatch::WaitUntil(t.max(now + SimDuration::from_nanos(1))),
                None => Dispatch::Idle,
            },
        }
    }

    fn block_completed(&mut self, req: &Request, ctx: &mut SchedCtx<'_>) {
        if self.passthrough {
            return self.layers[0].child.block_completed(req, ctx);
        }
        let i = self
            .req_layer
            .remove(&req.id)
            .unwrap_or(self.layers.len() - 1);
        self.layers[i].in_flight = self.layers[i].in_flight.saturating_sub(1);
        self.layers[i].child.block_completed(req, ctx)
    }

    fn block_failed(&mut self, req: &Request, error: sim_core::IoError, ctx: &mut SchedCtx<'_>) {
        if self.passthrough {
            return self.layers[0].child.block_failed(req, error, ctx);
        }
        let i = self
            .req_layer
            .remove(&req.id)
            .unwrap_or(self.layers.len() - 1);
        self.layers[i].in_flight = self.layers[i].in_flight.saturating_sub(1);
        // Reads were charged at dispatch; the transfer never happened.
        if req.is_read() {
            if let Some(b) = self.layers[i].bucket.as_mut() {
                b.refund(req.bytes());
            }
        }
        self.layers[i].child.block_failed(req, error, ctx)
    }

    fn timer_fired(&mut self, ctx: &mut SchedCtx<'_>) {
        if self.passthrough {
            return self.layers[0].child.timer_fired(ctx);
        }
        if let Some(t) = self.timer_at {
            if ctx.now >= t {
                self.timer_at = None;
            }
        }
        self.release_held(ctx);
        if self.layers.iter().any(|l| !l.parked.is_empty()) {
            ctx.kick_dispatch();
        }
        // Children share the kernel's timer plumbing; each tolerates
        // spurious maintenance fires.
        for l in &mut self.layers {
            l.child.timer_fired(ctx);
        }
    }

    fn pick_dirty_waiter(&mut self, waiters: &[Pid]) -> usize {
        if self.passthrough {
            return self.layers[0].child.pick_dirty_waiter(waiters);
        }
        // All in one layer: that child's policy decides.
        let first = waiters.first().map(|&p| self.classify_pid(p));
        if let Some(f) = first {
            let layers: Vec<usize> = waiters.iter().map(|&p| self.classify_pid(p)).collect();
            if layers.iter().all(|&l| l == f) {
                return self.layers[f].child.pick_dirty_waiter(waiters);
            }
            // Cross-layer: admit the highest-ranked layer's writer first
            // (latency layers, then tree order), FIFO within a layer.
            let rank = |l: usize| -> usize {
                if self.layers[l].latency_prio() {
                    0
                } else {
                    l + 1
                }
            };
            let mut best = 0;
            for (k, &l) in layers.iter().enumerate() {
                if rank(l) < rank(layers[best]) {
                    best = k;
                }
            }
            return best;
        }
        0
    }

    fn queued(&self) -> usize {
        if self.passthrough {
            return self.layers[0].child.queued();
        }
        self.layers
            .iter()
            .map(|l| l.child.queued() + l.parked.len())
            .sum()
    }

    fn audit(&self, quiesced: bool) -> Vec<String> {
        let mut out = Vec::new();
        for (i, l) in self.layers.iter().enumerate() {
            for msg in l.child.audit(quiesced) {
                out.push(format!(
                    "layer '{}' ({}): {}",
                    l.spec.name,
                    l.child.name(),
                    msg
                ));
            }
            if let Some(b) = l.bucket.as_ref() {
                if !b.balance.is_finite() {
                    out.push(format!(
                        "layer '{}': cap bucket balance not finite ({})",
                        l.spec.name, b.balance
                    ));
                }
            }
            if quiesced && !l.parked.is_empty() {
                out.push(format!(
                    "layer '{}': {} parked read(s) at quiesce",
                    l.spec.name,
                    l.parked.len()
                ));
            }
            if quiesced && l.in_flight != 0 {
                out.push(format!(
                    "layer '{}': {} request(s) still marked in flight at quiesce",
                    l.spec.name, l.in_flight
                ));
            }
            let _ = i;
        }
        if quiesced && !self.req_layer.is_empty() {
            out.push(format!(
                "{} request→layer route(s) never completed",
                self.req_layer.len()
            ));
        }
        if quiesced && (!self.cap_held.is_empty() || !self.dirty_held.is_empty()) {
            out.push(format!(
                "{} writer(s) still gate-held at quiesce",
                self.cap_held.len() + self.dirty_held.len()
            ));
        }
        if quiesced && !self.boost_held.is_empty() {
            out.push(format!(
                "{} writer(s) still boost-held at quiesce (no fsync in flight)",
                self.boost_held.len()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::parse_layers;
    use sim_block::{BlockDeadline, Cfq, Noop};
    use split_core::BlockOnly;

    fn resolver() -> impl FnMut(&str) -> Option<Box<dyn IoSched>> {
        |name: &str| -> Option<Box<dyn IoSched>> {
            match name {
                "noop" => Some(Box::new(BlockOnly::new(Noop::new()))),
                "cfq" => Some(Box::new(BlockOnly::new(Cfq::new()))),
                "block-deadline" => Some(Box::new(BlockOnly::new(BlockDeadline::new()))),
                _ => None,
            }
        }
    }

    #[test]
    fn build_rejects_unknown_child() {
        let specs = parse_layers("a:default:share:warp-drive").unwrap();
        let err = Layered::build(specs, LayeredConfig::default(), &mut resolver());
        assert!(matches!(err, Err(SpecError::UnknownChild(c)) if c == "warp-drive"));
    }

    #[test]
    fn single_layer_is_passthrough() {
        let l = Layered::single(Box::new(BlockOnly::new(Noop::new())));
        assert!(l.passthrough);
        assert_eq!(l.name(), "layered");
        assert_eq!(l.queued(), 0);
        assert!(l.audit(true).is_empty());
    }

    #[test]
    fn multi_layer_tree_classifies_and_reports() {
        let specs = parse_layers(
            "lat:pidmod=3,1:latency:block-deadline;\
             cap:pidmod=3,2:cap=4194304:cfq;\
             rest:default:share+weight=2:noop",
        )
        .unwrap();
        let mut l = Layered::build(specs, LayeredConfig::default(), &mut resolver()).unwrap();
        assert!(!l.passthrough);
        assert_eq!(l.layer_names(), vec!["lat", "cap", "rest"]);
        assert_eq!(l.classify_pid(Pid(1)), 0);
        assert_eq!(l.classify_pid(Pid(2)), 1);
        assert_eq!(l.classify_pid(Pid(3)), 2);
        // Classification is sticky.
        assert_eq!(l.classify_pid(Pid(1)), 0);
        // Cap 4 MB/s on a 128 MB/s hint ≈ 3% share: the solver clips the
        // cap layer's weighted entitlement and reports it.
        assert!(!l.feasibility().feasible());
    }

    #[test]
    fn bucket_refills_and_bounds() {
        let mut b = Bucket::new(1_000_000);
        assert!(b.affordable(1_000_000));
        b.charge(1_000_000);
        assert!(!b.affordable(1));
        b.refill(SimTime::from_nanos(500_000_000));
        assert!(b.affordable(500_000));
        assert!(!b.affordable(600_000));
        let at = b.ready_at(SimTime::from_nanos(500_000_000), 1_000_000);
        assert!(at > SimTime::from_nanos(500_000_000));
        b.refill(SimTime::from_nanos(10_000_000_000));
        assert!((b.balance - b.burst).abs() < 1.0);
    }
}
