//! Layer specifications: cgroup-like classification rules, per-layer
//! policies, and the `--layers` spec-string parser.
//!
//! A layer tree is an ordered list of [`LayerSpec`]s. A process is
//! classified once, at admission (the first time the scheduler sees it),
//! by the first rule that matches; the mandatory final layer carries the
//! catch-all [`LayerRule::Default`] so classification is total.

use sim_block::PrioClass;
use sim_core::Pid;
use std::fmt;

/// How processes are matched into a layer (first match wins).
#[derive(Debug, Clone, PartialEq)]
pub enum LayerRule {
    /// An explicit pid set (the analogue of `cgroup.procs`).
    Pids(Vec<u32>),
    /// Processes whose registered name starts with this prefix
    /// (the analogue of a systemd slice). Names are registered with
    /// `SchedAttr::ProcName` before the process's first I/O.
    NamePrefix(String),
    /// Processes whose I/O priority class matches (the cause-tag class:
    /// the class that rides the process's cause tags on every request).
    IoClass(PrioClass),
    /// `pid % modulus == remainder` — a deterministic partition used by
    /// the fuzz matrix, where pids are sequential and anonymous.
    PidMod {
        /// Divisor (> 0).
        modulus: u32,
        /// Selected residue class.
        remainder: u32,
    },
    /// Catch-all; must be the last layer's rule.
    Default,
}

impl LayerRule {
    /// Does this rule match the process?
    pub fn matches(&self, pid: Pid, name: Option<&str>, class: Option<PrioClass>) -> bool {
        match self {
            LayerRule::Pids(set) => set.contains(&pid.0),
            LayerRule::NamePrefix(p) => name.is_some_and(|n| n.starts_with(p.as_str())),
            LayerRule::IoClass(c) => class == Some(*c),
            LayerRule::PidMod { modulus, remainder } => pid.0 % modulus == *remainder,
            LayerRule::Default => true,
        }
    }

    /// Whether the rule can be evaluated from the pid alone. The
    /// `LayerAuditor` replays classification from audit events, which
    /// carry pids but not names or priorities; it only accepts trees
    /// whose every rule is pid-decidable.
    pub fn pid_decidable(&self) -> bool {
        matches!(
            self,
            LayerRule::Pids(_) | LayerRule::PidMod { .. } | LayerRule::Default
        )
    }
}

/// The resource policy a layer enforces on its members.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LayerPolicy {
    /// Plain weighted proportional share (the default).
    Share,
    /// Guaranteed minimum utilization share of the device, in (0, 1].
    MinUtil {
        /// Guaranteed fraction of device service.
        share: f64,
    },
    /// Bandwidth cap: admitted write bytes are token-gated at the
    /// syscall level and reads throttled at dispatch (block writes are
    /// never held — journal entanglement, paper §3.3).
    BandwidthCap {
        /// Sustained rate in bytes per second (> 0).
        bytes_per_sec: u64,
    },
    /// Dispatch ahead of every non-latency layer.
    LatencyPrio,
}

/// One layer of the tree: a name, a classification rule, a policy, a
/// proportional weight, and the child scheduler that runs inside it.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerSpec {
    /// Unique layer name (reports, metrics, auditor).
    pub name: String,
    /// Who belongs here.
    pub rule: LayerRule,
    /// What the layer guarantees or bounds.
    pub policy: LayerPolicy,
    /// Proportional weight among sibling layers (> 0; default 1).
    pub weight: f64,
    /// Child scheduler name, resolved by the experiment builder
    /// (e.g. "cfq", "split-token", "block-deadline").
    pub child: String,
}

impl LayerSpec {
    /// A layer with weight 1 and the plain share policy.
    pub fn new(name: &str, rule: LayerRule, child: &str) -> Self {
        LayerSpec {
            name: name.to_string(),
            rule,
            policy: LayerPolicy::Share,
            weight: 1.0,
            child: child.to_string(),
        }
    }

    /// Set the policy.
    pub fn policy(mut self, p: LayerPolicy) -> Self {
        self.policy = p;
        self
    }

    /// Set the weight.
    pub fn weight(mut self, w: f64) -> Self {
        self.weight = w;
        self
    }
}

/// A malformed layer tree, rejected before any scheduler is built.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// The spec string or list contained no layers.
    Empty,
    /// Two layers share a name.
    DuplicateLayer(String),
    /// A bandwidth cap of zero bytes per second.
    ZeroCap(String),
    /// A weight that is not a positive finite number.
    BadWeight(String),
    /// A min-utilization share outside (0, 1].
    BadMinShare(String),
    /// A `pidmod` rule with modulus 0 or remainder >= modulus.
    BadPidMod(String),
    /// No catch-all default layer, or the default is not last.
    DefaultNotLast,
    /// A policy token the parser does not know.
    UnknownPolicy(String),
    /// A rule token the parser does not know.
    UnknownRule(String),
    /// A layer entry without the `name:rule:policy:child` shape.
    Malformed(String),
    /// A child scheduler name the resolver does not know (includes
    /// nesting a "layered" inside a layer).
    UnknownChild(String),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Empty => write!(f, "layer spec is empty"),
            SpecError::DuplicateLayer(n) => write!(f, "duplicate layer name '{n}'"),
            SpecError::ZeroCap(n) => write!(f, "layer '{n}': bandwidth cap must be > 0"),
            SpecError::BadWeight(n) => {
                write!(f, "layer '{n}': weight must be a positive finite number")
            }
            SpecError::BadMinShare(n) => write!(f, "layer '{n}': min share must be in (0, 1]"),
            SpecError::BadPidMod(n) => {
                write!(
                    f,
                    "layer '{n}': pidmod needs modulus > 0 and remainder < modulus"
                )
            }
            SpecError::DefaultNotLast => {
                write!(
                    f,
                    "exactly one 'default' rule is required, on the last layer"
                )
            }
            SpecError::UnknownPolicy(p) => write!(f, "unknown policy '{p}'"),
            SpecError::UnknownRule(r) => write!(f, "unknown rule '{r}'"),
            SpecError::Malformed(e) => {
                write!(
                    f,
                    "malformed layer entry '{e}' (want name:rule:policy:child)"
                )
            }
            SpecError::UnknownChild(c) => write!(f, "unknown child scheduler '{c}'"),
        }
    }
}

impl std::error::Error for SpecError {}

/// Validate a layer tree: non-empty, unique names, positive weights,
/// caps > 0, min shares in (0, 1], exactly one catch-all default rule
/// and it must be last (every earlier layer would shadow anything after
/// a default).
pub fn validate(specs: &[LayerSpec]) -> Result<(), SpecError> {
    if specs.is_empty() {
        return Err(SpecError::Empty);
    }
    for (i, s) in specs.iter().enumerate() {
        if specs[..i].iter().any(|p| p.name == s.name) {
            return Err(SpecError::DuplicateLayer(s.name.clone()));
        }
        if !(s.weight.is_finite() && s.weight > 0.0) {
            return Err(SpecError::BadWeight(s.name.clone()));
        }
        match s.policy {
            LayerPolicy::BandwidthCap { bytes_per_sec: 0 } => {
                return Err(SpecError::ZeroCap(s.name.clone()));
            }
            LayerPolicy::MinUtil { share } if !(share > 0.0 && share <= 1.0) => {
                return Err(SpecError::BadMinShare(s.name.clone()));
            }
            _ => {}
        }
        if let LayerRule::PidMod { modulus, remainder } = s.rule {
            if modulus == 0 || remainder >= modulus {
                return Err(SpecError::BadPidMod(s.name.clone()));
            }
        }
        let is_default = s.rule == LayerRule::Default;
        let is_last = i == specs.len() - 1;
        if is_default != is_last {
            return Err(SpecError::DefaultNotLast);
        }
    }
    Ok(())
}

/// Classify a process: index of the first layer whose rule matches.
/// Total because `validate` guarantees a trailing default layer.
pub fn classify(
    specs: &[LayerSpec],
    pid: Pid,
    name: Option<&str>,
    class: Option<PrioClass>,
) -> usize {
    specs
        .iter()
        .position(|s| s.rule.matches(pid, name, class))
        .unwrap_or(specs.len() - 1)
}

/// Parse a `--layers` spec string.
///
/// Grammar (layers separated by `;`, fields by `:`):
///
/// ```text
/// SPEC   := LAYER (';' LAYER)*
/// LAYER  := NAME ':' RULE ':' POLICY ':' CHILD
/// RULE   := 'pids=' PID (',' PID)* | 'prefix=' STR
///         | 'class=' ('rt'|'be'|'idle') | 'pidmod=' MOD ',' REM
///         | 'default'
/// POLICY := POL ('+weight=' FLOAT)?
/// POL    := 'share' | 'latency' | 'min=' FLOAT | 'cap=' BYTES_PER_SEC
/// ```
///
/// Example: `lat:pidmod=3,1:latency:block-deadline;bulk:default:cap=4194304+weight=2:cfq`
pub fn parse_layers(spec: &str) -> Result<Vec<LayerSpec>, SpecError> {
    let mut out = Vec::new();
    for entry in spec.split(';').filter(|e| !e.trim().is_empty()) {
        let parts: Vec<&str> = entry.trim().split(':').collect();
        if parts.len() != 4 {
            return Err(SpecError::Malformed(entry.trim().to_string()));
        }
        let (name, rule, policy, child) = (parts[0], parts[1], parts[2], parts[3]);
        if name.is_empty() || child.is_empty() {
            return Err(SpecError::Malformed(entry.trim().to_string()));
        }
        let rule = parse_rule(rule)?;
        let (policy, weight) = parse_policy(policy)?;
        out.push(LayerSpec {
            name: name.to_string(),
            rule,
            policy,
            weight,
            child: child.to_string(),
        });
    }
    validate(&out)?;
    Ok(out)
}

fn parse_rule(s: &str) -> Result<LayerRule, SpecError> {
    if s == "default" {
        return Ok(LayerRule::Default);
    }
    if let Some(list) = s.strip_prefix("pids=") {
        let pids: Result<Vec<u32>, _> = list.split(',').map(|p| p.trim().parse()).collect();
        return match pids {
            Ok(v) if !v.is_empty() => Ok(LayerRule::Pids(v)),
            _ => Err(SpecError::UnknownRule(s.to_string())),
        };
    }
    if let Some(p) = s.strip_prefix("prefix=") {
        if p.is_empty() {
            return Err(SpecError::UnknownRule(s.to_string()));
        }
        return Ok(LayerRule::NamePrefix(p.to_string()));
    }
    if let Some(c) = s.strip_prefix("class=") {
        return match c {
            "rt" => Ok(LayerRule::IoClass(PrioClass::RealTime)),
            "be" => Ok(LayerRule::IoClass(PrioClass::BestEffort)),
            "idle" => Ok(LayerRule::IoClass(PrioClass::Idle)),
            _ => Err(SpecError::UnknownRule(s.to_string())),
        };
    }
    if let Some(mr) = s.strip_prefix("pidmod=") {
        let mut it = mr.split(',');
        let m = it.next().and_then(|v| v.trim().parse::<u32>().ok());
        let r = it.next().and_then(|v| v.trim().parse::<u32>().ok());
        return match (m, r, it.next()) {
            (Some(m), Some(r), None) => Ok(LayerRule::PidMod {
                modulus: m,
                remainder: r,
            }),
            _ => Err(SpecError::UnknownRule(s.to_string())),
        };
    }
    Err(SpecError::UnknownRule(s.to_string()))
}

fn parse_policy(s: &str) -> Result<(LayerPolicy, f64), SpecError> {
    let mut policy = None;
    let mut weight = 1.0;
    for tok in s.split('+') {
        if let Some(w) = tok.strip_prefix("weight=") {
            weight = w
                .parse::<f64>()
                .map_err(|_| SpecError::UnknownPolicy(tok.to_string()))?;
            continue;
        }
        let p = if tok == "share" {
            LayerPolicy::Share
        } else if tok == "latency" {
            LayerPolicy::LatencyPrio
        } else if let Some(m) = tok.strip_prefix("min=") {
            let share = m
                .parse::<f64>()
                .map_err(|_| SpecError::UnknownPolicy(tok.to_string()))?;
            LayerPolicy::MinUtil { share }
        } else if let Some(c) = tok.strip_prefix("cap=") {
            let bytes_per_sec = c
                .parse::<u64>()
                .map_err(|_| SpecError::UnknownPolicy(tok.to_string()))?;
            LayerPolicy::BandwidthCap { bytes_per_sec }
        } else {
            return Err(SpecError::UnknownPolicy(tok.to_string()));
        };
        if policy.replace(p).is_some() {
            return Err(SpecError::UnknownPolicy(s.to_string()));
        }
    }
    Ok((policy.unwrap_or(LayerPolicy::Share), weight))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_grammar() {
        let specs = parse_layers(
            "lat:pidmod=3,1:latency:block-deadline;\
             svc:prefix=tenantA/:min=0.3:split-token;\
             rt:class=rt:share+weight=4:afq;\
             db:pids=7,9:cap=1048576+weight=2:cfq;\
             rest:default:share:noop",
        )
        .unwrap();
        assert_eq!(specs.len(), 5);
        assert_eq!(
            specs[0].rule,
            LayerRule::PidMod {
                modulus: 3,
                remainder: 1
            }
        );
        assert_eq!(specs[0].policy, LayerPolicy::LatencyPrio);
        assert_eq!(specs[1].rule, LayerRule::NamePrefix("tenantA/".into()));
        assert_eq!(specs[1].policy, LayerPolicy::MinUtil { share: 0.3 });
        assert_eq!(specs[2].rule, LayerRule::IoClass(PrioClass::RealTime));
        assert_eq!(specs[2].weight, 4.0);
        assert_eq!(specs[3].rule, LayerRule::Pids(vec![7, 9]));
        assert_eq!(
            specs[3].policy,
            LayerPolicy::BandwidthCap {
                bytes_per_sec: 1048576
            }
        );
        assert_eq!(specs[3].weight, 2.0);
        assert_eq!(specs[4].rule, LayerRule::Default);
    }

    #[test]
    fn rejects_unknown_policy() {
        assert_eq!(
            parse_layers("a:default:turbo:cfq"),
            Err(SpecError::UnknownPolicy("turbo".into()))
        );
    }

    #[test]
    fn rejects_zero_cap() {
        assert_eq!(
            parse_layers("a:default:cap=0:cfq"),
            Err(SpecError::ZeroCap("a".into()))
        );
    }

    #[test]
    fn rejects_duplicate_layer_name() {
        assert_eq!(
            parse_layers("a:pidmod=2,0:share:cfq;a:default:share:cfq"),
            Err(SpecError::DuplicateLayer("a".into()))
        );
    }

    #[test]
    fn requires_trailing_default() {
        assert_eq!(
            parse_layers("a:pidmod=2,0:share:cfq;b:pidmod=2,1:share:cfq"),
            Err(SpecError::DefaultNotLast)
        );
        assert_eq!(
            parse_layers("a:default:share:cfq;b:pidmod=2,1:share:cfq"),
            Err(SpecError::DefaultNotLast)
        );
    }

    #[test]
    fn rejects_bad_weight_and_min_share() {
        assert_eq!(
            parse_layers("a:default:share+weight=0:cfq"),
            Err(SpecError::BadWeight("a".into()))
        );
        assert_eq!(
            parse_layers("a:default:min=1.5:cfq"),
            Err(SpecError::BadMinShare("a".into()))
        );
    }

    #[test]
    fn rejects_bad_pidmod() {
        assert_eq!(
            parse_layers("a:pidmod=0,0:share:cfq;d:default:share:cfq"),
            Err(SpecError::BadPidMod("a".into()))
        );
        assert_eq!(
            parse_layers("a:pidmod=3,3:share:cfq;d:default:share:cfq"),
            Err(SpecError::BadPidMod("a".into()))
        );
    }

    #[test]
    fn classify_first_match_wins_and_is_total() {
        let specs =
            parse_layers("a:pids=5:share:cfq;b:pidmod=2,1:share:cfq;d:default:share:cfq").unwrap();
        assert_eq!(classify(&specs, Pid(5), None, None), 0);
        assert_eq!(classify(&specs, Pid(3), None, None), 1);
        assert_eq!(classify(&specs, Pid(4), None, None), 2);
    }

    #[test]
    fn classify_by_name_and_class() {
        let specs =
            parse_layers("svc:prefix=tenantA/:share:cfq;rt:class=rt:share:cfq;d:default:share:cfq")
                .unwrap();
        assert_eq!(classify(&specs, Pid(1), Some("tenantA/db"), None), 0);
        assert_eq!(
            classify(
                &specs,
                Pid(1),
                Some("tenantB/db"),
                Some(PrioClass::RealTime)
            ),
            1
        );
        assert_eq!(classify(&specs, Pid(1), None, None), 2);
        assert!(!specs[0].rule.pid_decidable());
        assert!(specs[2].rule.pid_decidable());
    }
}
