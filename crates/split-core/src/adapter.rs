//! Adapter running a classic block-level elevator inside the split
//! framework (Figure 2a inside Figure 2c, so to speak).
//!
//! `BlockOnly` ignores the syscall- and memory-level hooks — exactly the
//! information a block-only scheduler does not have — and forwards the
//! block hooks to the wrapped [`Elevator`]. This is how CFQ, Block-Deadline
//! and Noop run in every experiment.

use sim_block::{Dispatch, Elevator, Request};

use crate::hooks::{IoSched, SchedAttr, SchedCtx};

/// A classic elevator adapted to the [`IoSched`] interface.
pub struct BlockOnly<E: Elevator> {
    inner: E,
}

impl<E: Elevator> BlockOnly<E> {
    /// Wrap an elevator.
    pub fn new(inner: E) -> Self {
        BlockOnly { inner }
    }

    /// Access the wrapped elevator.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// Mutable access to the wrapped elevator.
    pub fn inner_mut(&mut self) -> &mut E {
        &mut self.inner
    }
}

impl<E: Elevator> IoSched for BlockOnly<E> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn configure(&mut self, _pid: sim_core::Pid, _attr: SchedAttr) {
        // A block-only scheduler keys on whatever the request carries
        // (submitter prio, deadline); per-pid attributes are applied by the
        // kernel when building requests, not here.
    }

    fn block_add(&mut self, req: Request, ctx: &mut SchedCtx<'_>) {
        self.inner.add(req, ctx.now);
        ctx.kick_dispatch();
    }

    fn block_dispatch(&mut self, ctx: &mut SchedCtx<'_>) -> Dispatch {
        self.inner.dispatch(ctx.now, ctx.device)
    }

    fn block_completed(&mut self, req: &Request, ctx: &mut SchedCtx<'_>) {
        self.inner.completed(req, ctx.now);
    }

    fn queued(&self) -> usize {
        self.inner.queued()
    }

    fn audit(&self, quiesced: bool) -> Vec<String> {
        self.inner.audit(quiesced)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hooks::{Gate, SyscallInfo, SyscallKind};
    use sim_block::Noop;
    use sim_core::{BlockNo, CauseSet, FileId, Pid, RequestId, SimTime};
    use sim_device::{HddModel, IoDir};

    fn req(id: u64) -> Request {
        Request {
            id: RequestId(id),
            dir: IoDir::Read,
            start: BlockNo(id * 10),
            nblocks: 1,
            submitter: Pid(1),
            causes: CauseSet::empty(),
            sync: true,
            ioprio: Default::default(),
            deadline: None,
            submitted_at: SimTime::ZERO,
            file: None,
            kind: Default::default(),
        }
    }

    #[test]
    fn forwards_block_hooks_and_ignores_syscalls() {
        let dev = HddModel::new();
        let mut s = BlockOnly::new(Noop::new());
        let mut ctx = SchedCtx::new(SimTime::ZERO, &dev);

        // Syscall hooks: default no-op, always Proceed.
        let sc = SyscallInfo {
            pid: Pid(1),
            kind: SyscallKind::Fsync { file: FileId(1) },
            ioprio: Default::default(),
            cached: None,
        };
        assert_eq!(s.syscall_enter(&sc, &mut ctx), Gate::Proceed);

        s.block_add(req(1), &mut ctx);
        s.block_add(req(2), &mut ctx);
        assert_eq!(s.queued(), 2);
        match s.block_dispatch(&mut ctx) {
            Dispatch::Issue(r) => assert_eq!(r.id, RequestId(1)),
            other => panic!("{other:?}"),
        }
        assert_eq!(s.name(), "noop");
    }
}
