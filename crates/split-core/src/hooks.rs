//! The hook interface between the kernel and a split scheduler.

use sim_block::{Dispatch, IoPrio, QueueOccupancy, Request};
use sim_core::{BlockNo, CauseSet, FileId, IoError, Pid, SimDuration, SimTime};
use sim_device::DiskModel;
use sim_trace::Tracer;

/// Identifies an I/O-related system call as seen by the syscall-level
/// hooks. Reads are *not* gated at entry (the paper schedules reads below
/// the cache, §4.2) but are still reported to `syscall_exit` for
/// accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyscallKind {
    /// `read(file, offset, len)`.
    Read {
        /// Target file.
        file: FileId,
        /// Byte offset.
        offset: u64,
        /// Byte count.
        len: u64,
    },
    /// `write(file, offset, len)`.
    Write {
        /// Target file.
        file: FileId,
        /// Byte offset.
        offset: u64,
        /// Byte count.
        len: u64,
    },
    /// `fsync(file)`.
    Fsync {
        /// Target file.
        file: FileId,
    },
    /// `creat(path)` — a metadata write.
    Create,
    /// `mkdir(path)` — a metadata write.
    Mkdir,
    /// `unlink(path)` — a metadata write (listed as future work in §4.2;
    /// implemented here).
    Unlink {
        /// The file being removed.
        file: FileId,
    },
}

impl SyscallKind {
    /// Whether this call mutates state (write, fsync or metadata ops).
    pub fn is_write_like(&self) -> bool {
        !matches!(self, SyscallKind::Read { .. })
    }

    /// Short name for stats and traces.
    pub fn name(&self) -> &'static str {
        match self {
            SyscallKind::Read { .. } => "read",
            SyscallKind::Write { .. } => "write",
            SyscallKind::Fsync { .. } => "fsync",
            SyscallKind::Create => "creat",
            SyscallKind::Mkdir => "mkdir",
            SyscallKind::Unlink { .. } => "unlink",
        }
    }
}

/// A system call arriving at the scheduler.
#[derive(Debug, Clone, Copy)]
pub struct SyscallInfo {
    /// Calling process.
    pub pid: Pid,
    /// Which call, with arguments.
    pub kind: SyscallKind,
    /// The caller's I/O priority.
    pub ioprio: IoPrio,
    /// At `syscall_exit` of a read: whether every page came from the page
    /// cache. The SCS framework needed a file-system modification to learn
    /// this (§5.3); the split framework does not use it (reads are
    /// scheduled below the cache), but exposes it for the SCS baseline.
    pub cached: Option<bool>,
}

/// Verdict of `syscall_enter`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gate {
    /// Let the call run now.
    Proceed,
    /// Park the caller; the scheduler will `wake(pid)` it later.
    Hold,
}

/// Memory-level notification: a buffer was dirtied, or a dirty buffer was
/// re-dirtied (§4.2, "buffer-dirty hook").
#[derive(Debug, Clone)]
pub struct BufferDirtied {
    /// File owning the page.
    pub file: FileId,
    /// Page index within the file.
    pub page: u64,
    /// The causes now responsible (after this write).
    pub causes: CauseSet,
    /// For an overwrite of an already-dirty buffer: who was responsible
    /// before. The scheduler may shift accounting to the last writer.
    pub prev: Option<CauseSet>,
    /// On-disk location if already allocated; `None` under delayed
    /// allocation — the reason memory-level cost estimates are guesses.
    pub block: Option<BlockNo>,
    /// Bytes newly dirtied by this event (0 for a pure overwrite).
    pub new_bytes: u64,
}

/// Memory-level notification: a buffer left the cache before writeback
/// ("buffer-free hook") — the write work evaporated.
#[derive(Debug, Clone)]
pub struct BufferFreed {
    /// File owning the page.
    pub file: FileId,
    /// Page index within the file.
    pub page: u64,
    /// Who had been responsible.
    pub causes: CauseSet,
    /// Bytes whose writeback was avoided.
    pub bytes: u64,
}

/// Per-process scheduling attributes, set via the kernel's
/// `sched_configure` API (the simulator's analogue of `ionice` and the
/// paper's per-process deadline / token settings).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SchedAttr {
    /// I/O priority (CFQ, AFQ).
    Prio(IoPrio),
    /// Deadline for this process's fsyncs (Split-Deadline).
    FsyncDeadline(SimDuration),
    /// Deadline for this process's block reads.
    ReadDeadline(SimDuration),
    /// Deadline for this process's block writes (Block-Deadline only).
    WriteDeadline(SimDuration),
    /// Throttle to this many normalized bytes per second (token schedulers).
    TokenRate(u64),
    /// Cap on accumulated tokens, in bytes.
    TokenCap(u64),
    /// Join a shared token bucket (VM instances, HDFS accounts, thread
    /// groups share one limit).
    TokenGroup(u32),
    /// Remove any throttle.
    Unthrottled,
    /// Register a process name for rule-based classification (the layer
    /// plane's analogue of a cgroup/systemd-slice membership). Must be
    /// configured before the process's first I/O to affect admission.
    ProcName(&'static str),
}

/// Commands a scheduler queues during a hook invocation; the kernel
/// applies them after the hook returns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedCmd {
    /// Unpark a task previously held at `syscall_enter`.
    Wake(Pid),
    /// Call `timer_fired` at (or after) the given instant.
    Timer(SimTime),
    /// Ask the kernel to start asynchronous writeback: of one file's dirty
    /// pages, or (with `file: None`) of the oldest dirty data in general.
    /// Asynchronous writeback creates no synchronization point (§5.2).
    StartWriteback {
        /// Specific file, or any.
        file: Option<FileId>,
        /// Upper bound on pages to flush.
        max_pages: u64,
    },
    /// Re-run the block dispatch loop (e.g. after internal state changed
    /// in a way that may unblock dispatch).
    KickDispatch,
}

/// Context handed to every hook: the current time, a read-only view of the
/// device model for cost peeking, a tracer for scheduler-side metrics, and
/// a command buffer.
pub struct SchedCtx<'a> {
    /// Current simulated time.
    pub now: SimTime,
    /// The device servicing this kernel's block layer; peek-only.
    pub device: &'a dyn DiskModel,
    /// Hardware-queue occupancy when the queued-device plane is active;
    /// `None` on the legacy serial device. Split schedulers use it to
    /// see — and cap — a tenant's share of the in-flight slots.
    occupancy: Option<&'a QueueOccupancy>,
    tracer: Tracer,
    commands: Vec<SchedCmd>,
}

impl<'a> SchedCtx<'a> {
    /// Build a context (called by the kernel before invoking a hook).
    /// Carries a disabled tracer; use [`SchedCtx::traced`] to attach one.
    pub fn new(now: SimTime, device: &'a dyn DiskModel) -> Self {
        Self::traced(now, device, Tracer::new())
    }

    /// Build a context that shares the kernel's tracer, so schedulers can
    /// publish their internal state (token levels, queue depths) into the
    /// same metrics registry as the rest of the stack.
    pub fn traced(now: SimTime, device: &'a dyn DiskModel, tracer: Tracer) -> Self {
        SchedCtx {
            now,
            device,
            occupancy: None,
            tracer,
            commands: Vec::new(),
        }
    }

    /// Attach the hardware-queue occupancy view (queued-device plane).
    pub fn with_occupancy(mut self, occ: &'a QueueOccupancy) -> Self {
        self.occupancy = Some(occ);
        self
    }

    /// Hardware-queue occupancy, when the queued-device plane is active.
    pub fn occupancy(&self) -> Option<&QueueOccupancy> {
        self.occupancy
    }

    /// The kernel's tracing handle (disabled unless the kernel enabled it).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Unpark a held task.
    pub fn wake(&mut self, pid: Pid) {
        self.commands.push(SchedCmd::Wake(pid));
    }

    /// Arm a timer.
    pub fn set_timer(&mut self, at: SimTime) {
        self.commands.push(SchedCmd::Timer(at));
    }

    /// Kick asynchronous writeback.
    pub fn start_writeback(&mut self, file: Option<FileId>, max_pages: u64) {
        self.commands
            .push(SchedCmd::StartWriteback { file, max_pages });
    }

    /// Re-poll block dispatch.
    pub fn kick_dispatch(&mut self) {
        self.commands.push(SchedCmd::KickDispatch);
    }

    /// Seed the command buffer with a recycled (empty) allocation, so a
    /// warm kernel's hook invocations never touch the allocator.
    pub fn with_commands_buf(mut self, buf: Vec<SchedCmd>) -> Self {
        debug_assert!(buf.is_empty());
        self.commands = buf;
        self
    }

    /// Take the queued commands (kernel side).
    pub fn drain(&mut self) -> Vec<SchedCmd> {
        std::mem::take(&mut self.commands)
    }

    /// Whether any command is pending (test helper).
    pub fn has_commands(&self) -> bool {
        !self.commands.is_empty()
    }
}

/// A complete I/O scheduler in the split framework.
///
/// Every method has a default no-op implementation, so a scheduler
/// implements exactly the levels it cares about — a block-only scheduler
/// overrides the block hooks, SCS overrides the syscall hooks, and a true
/// split scheduler uses all three (§3).
pub trait IoSched {
    /// Scheduler name for reports.
    fn name(&self) -> &'static str;

    /// Set a per-process attribute. Unsupported attributes are ignored.
    fn configure(&mut self, pid: Pid, attr: SchedAttr) {
        let _ = (pid, attr);
    }

    /// A gated system call is entering (write/fsync/creat/mkdir/unlink —
    /// reads are not gated, see module docs). Return [`Gate::Hold`] to park
    /// the caller until a later `ctx.wake(pid)`.
    fn syscall_enter(&mut self, sc: &SyscallInfo, ctx: &mut SchedCtx<'_>) -> Gate {
        let _ = (sc, ctx);
        Gate::Proceed
    }

    /// A system call finished executing (all kinds, including reads).
    fn syscall_exit(&mut self, sc: &SyscallInfo, ctx: &mut SchedCtx<'_>) {
        let _ = (sc, ctx);
    }

    /// Memory level: a buffer was dirtied or re-dirtied.
    fn buffer_dirtied(&mut self, ev: &BufferDirtied, ctx: &mut SchedCtx<'_>) {
        let _ = (ev, ctx);
    }

    /// Memory level: a dirty buffer was dropped before writeback.
    fn buffer_freed(&mut self, ev: &BufferFreed, ctx: &mut SchedCtx<'_>) {
        let _ = (ev, ctx);
    }

    /// Block level: a request entered the block layer. The scheduler owns
    /// the queue; it must hold the request until a `block_dispatch` returns
    /// it.
    fn block_add(&mut self, req: Request, ctx: &mut SchedCtx<'_>);

    /// Block level: the device is idle; pick the next request.
    fn block_dispatch(&mut self, ctx: &mut SchedCtx<'_>) -> Dispatch;

    /// Block level: a request completed at the device.
    fn block_completed(&mut self, req: &Request, ctx: &mut SchedCtx<'_>) {
        let _ = (req, ctx);
    }

    /// Block level: a request *failed* at the device (fault injection).
    /// The default treats it like a completion so queue accounting stays
    /// balanced; schedulers with cost accounting override this to refund
    /// what the failed request was charged.
    fn block_failed(&mut self, req: &Request, error: IoError, ctx: &mut SchedCtx<'_>) {
        let _ = error;
        self.block_completed(req, ctx);
    }

    /// A timer armed via `ctx.set_timer` fired.
    fn timer_fired(&mut self, ctx: &mut SchedCtx<'_>) {
        let _ = ctx;
    }

    /// The kernel is about to admit one writer blocked on the dirty
    /// threshold; return the index of the waiter to wake. The default is
    /// FIFO (Linux's behaviour). Split schedulers use this to make the
    /// write-buffer admission order follow their policy — controlling
    /// "when writes become visible to the file system" (§3.3).
    fn pick_dirty_waiter(&mut self, waiters: &[Pid]) -> usize {
        let _ = waiters;
        0
    }

    /// Requests currently held at the block level.
    fn queued(&self) -> usize;

    /// Self-audit the scheduler's internal ledgers, returning one message
    /// per violated invariant. `quiesced` is true when the caller knows no
    /// request is queued or in flight — accounting schedulers then check
    /// that every dispatch-time charge has been settled by a completion or
    /// refund. The default implementation reports nothing.
    fn audit(&self, quiesced: bool) -> Vec<String> {
        let _ = quiesced;
        Vec::new()
    }
}

/// Boxed schedulers forward every hook, so wrappers generic over
/// `S: IoSched` (the check harness's sabotage shim, for one) compose with
/// the `Box<dyn IoSched>` the experiment builders hand out.
impl IoSched for Box<dyn IoSched> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn configure(&mut self, pid: Pid, attr: SchedAttr) {
        (**self).configure(pid, attr)
    }

    fn syscall_enter(&mut self, sc: &SyscallInfo, ctx: &mut SchedCtx<'_>) -> Gate {
        (**self).syscall_enter(sc, ctx)
    }

    fn syscall_exit(&mut self, sc: &SyscallInfo, ctx: &mut SchedCtx<'_>) {
        (**self).syscall_exit(sc, ctx)
    }

    fn buffer_dirtied(&mut self, ev: &BufferDirtied, ctx: &mut SchedCtx<'_>) {
        (**self).buffer_dirtied(ev, ctx)
    }

    fn buffer_freed(&mut self, ev: &BufferFreed, ctx: &mut SchedCtx<'_>) {
        (**self).buffer_freed(ev, ctx)
    }

    fn block_add(&mut self, req: Request, ctx: &mut SchedCtx<'_>) {
        (**self).block_add(req, ctx)
    }

    fn block_dispatch(&mut self, ctx: &mut SchedCtx<'_>) -> Dispatch {
        (**self).block_dispatch(ctx)
    }

    fn block_completed(&mut self, req: &Request, ctx: &mut SchedCtx<'_>) {
        (**self).block_completed(req, ctx)
    }

    fn block_failed(&mut self, req: &Request, error: IoError, ctx: &mut SchedCtx<'_>) {
        (**self).block_failed(req, error, ctx)
    }

    fn timer_fired(&mut self, ctx: &mut SchedCtx<'_>) {
        (**self).timer_fired(ctx)
    }

    fn pick_dirty_waiter(&mut self, waiters: &[Pid]) -> usize {
        (**self).pick_dirty_waiter(waiters)
    }

    fn queued(&self) -> usize {
        (**self).queued()
    }

    fn audit(&self, quiesced: bool) -> Vec<String> {
        (**self).audit(quiesced)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_device::HddModel;

    #[test]
    fn ctx_collects_commands_in_order() {
        let dev = HddModel::new();
        let mut ctx = SchedCtx::new(SimTime::ZERO, &dev);
        ctx.wake(Pid(3));
        ctx.set_timer(SimTime::from_nanos(10));
        ctx.start_writeback(Some(FileId(7)), 128);
        ctx.kick_dispatch();
        assert!(ctx.has_commands());
        let cmds = ctx.drain();
        assert_eq!(cmds.len(), 4);
        assert_eq!(cmds[0], SchedCmd::Wake(Pid(3)));
        assert_eq!(cmds[1], SchedCmd::Timer(SimTime::from_nanos(10)));
        assert_eq!(
            cmds[2],
            SchedCmd::StartWriteback {
                file: Some(FileId(7)),
                max_pages: 128
            }
        );
        assert_eq!(cmds[3], SchedCmd::KickDispatch);
        assert!(!ctx.has_commands());
    }

    #[test]
    fn syscall_kind_classification() {
        let w = SyscallKind::Write {
            file: FileId(1),
            offset: 0,
            len: 4096,
        };
        let r = SyscallKind::Read {
            file: FileId(1),
            offset: 0,
            len: 4096,
        };
        assert!(w.is_write_like());
        assert!(!r.is_write_like());
        assert!(SyscallKind::Create.is_write_like());
        assert_eq!(SyscallKind::Mkdir.name(), "mkdir");
    }
}
