//! Cost estimation (§3.2).
//!
//! Two models, mirroring Split-Token's two-phase accounting:
//!
//! * [`PrelimWriteModel`] — the *memory-level* guess made the moment a
//!   buffer is dirtied, before allocation: randomness is inferred from file
//!   offsets only.
//! * [`SeekCostModel`] — the *block-level* model applied when requests are
//!   dispatched with real disk locations; also AFQ's "simple seek model"
//!   for charging processes for disk time.
//!
//! Costs are expressed as [`NormalizedCost`]: the number of
//! sequential-equivalent bytes the operation is worth on the device (1 MB
//! of random 4 KB I/O on a disk normalizes to far more than 1 MB).

use std::collections::HashMap;

use sim_core::{BlockNo, FileId, SimDuration};
use sim_device::{DiskModel, DiskRequestShape};

/// A cost in sequential-equivalent bytes.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct NormalizedCost(pub f64);

impl NormalizedCost {
    /// Zero cost.
    pub const ZERO: NormalizedCost = NormalizedCost(0.0);

    /// From a device service time, normalized by the device's sequential
    /// bandwidth.
    pub fn from_time(t: SimDuration, seq_bandwidth: f64) -> Self {
        NormalizedCost(t.as_secs_f64() * seq_bandwidth)
    }

    /// Plain bytes (already sequential).
    pub fn from_bytes(b: u64) -> Self {
        NormalizedCost(b as f64)
    }

    /// The raw value.
    pub fn bytes(self) -> f64 {
        self.0
    }
}

impl std::ops::Add for NormalizedCost {
    type Output = NormalizedCost;
    fn add(self, o: NormalizedCost) -> NormalizedCost {
        NormalizedCost(self.0 + o.0)
    }
}

impl std::ops::Sub for NormalizedCost {
    type Output = NormalizedCost;
    fn sub(self, o: NormalizedCost) -> NormalizedCost {
        NormalizedCost(self.0 - o.0)
    }
}

/// Block-level cost model: charges a dispatched request its true device
/// time (peeked from the device model before dispatch), normalized to
/// sequential-equivalent bytes.
#[derive(Debug, Default)]
pub struct SeekCostModel {
    last_end: Option<BlockNo>,
}

impl SeekCostModel {
    /// Fresh model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cost of dispatching `shape` next, according to `dev`'s current
    /// state. Advances the model's notion of the head.
    pub fn charge(&mut self, dev: &dyn DiskModel, shape: &DiskRequestShape) -> NormalizedCost {
        self.last_end = Some(shape.end());
        NormalizedCost::from_time(dev.peek_service_time(shape), dev.seq_bandwidth())
    }

    /// Whether `shape` continues the previous dispatch (sequential).
    pub fn is_sequential(&self, shape: &DiskRequestShape) -> bool {
        self.last_end == Some(shape.start)
    }
}

/// Memory-level preliminary write-cost model. Tracks the last written
/// offset per file; a write that does not continue the previous one is
/// presumed random and charged a seek-equivalent surcharge. Delayed
/// allocation means this is only a guess — the block-level model revises
/// it later (§3.2, Figure 8).
#[derive(Debug)]
pub struct PrelimWriteModel {
    last_offset: HashMap<FileId, u64>,
    /// Surcharge for a presumed-random write, in sequential-equivalent
    /// bytes (≈ seek time × bandwidth).
    seek_equiv_bytes: f64,
}

impl PrelimWriteModel {
    /// Model with a seek-equivalence derived from the device: an average
    /// seek (~8 ms on disk) times sequential bandwidth.
    pub fn for_device(dev: &dyn DiskModel) -> Self {
        let seek_secs = if dev.is_rotational() { 0.008 } else { 0.0001 };
        PrelimWriteModel {
            last_offset: HashMap::new(),
            seek_equiv_bytes: seek_secs * dev.seq_bandwidth(),
        }
    }

    /// Model with an explicit surcharge.
    pub fn with_seek_equiv(seek_equiv_bytes: f64) -> Self {
        PrelimWriteModel {
            last_offset: HashMap::new(),
            seek_equiv_bytes,
        }
    }

    /// Estimate the cost of `len` bytes written to `file` at `offset`,
    /// updating per-file state.
    pub fn estimate(&mut self, file: FileId, offset: u64, len: u64) -> NormalizedCost {
        let sequential = self.last_offset.get(&file) == Some(&offset);
        self.last_offset.insert(file, offset + len);
        if sequential {
            NormalizedCost::from_bytes(len)
        } else {
            NormalizedCost(len as f64 + self.seek_equiv_bytes)
        }
    }

    /// Forget a file (closed / deleted).
    pub fn forget(&mut self, file: FileId) {
        self.last_offset.remove(&file);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::BlockNo;
    use sim_device::{HddModel, IoDir, SsdModel};

    #[test]
    fn normalized_cost_from_time() {
        let c = NormalizedCost::from_time(SimDuration::from_millis(10), 100.0e6);
        assert!((c.bytes() - 1.0e6).abs() < 1.0);
    }

    #[test]
    fn seek_model_charges_random_more_than_sequential() {
        let mut dev = HddModel::new();
        // Position the head.
        dev.service_time(&DiskRequestShape::new(IoDir::Write, BlockNo(0), 1));
        let mut m = SeekCostModel::new();
        let seq = m.charge(&dev, &DiskRequestShape::new(IoDir::Write, BlockNo(1), 1));
        let rand = m.charge(
            &dev,
            &DiskRequestShape::new(IoDir::Write, BlockNo(60_000_000), 1),
        );
        assert!(rand.bytes() > 20.0 * seq.bytes());
    }

    #[test]
    fn seek_model_tracks_sequentiality() {
        let mut m = SeekCostModel::new();
        let dev = HddModel::new();
        let a = DiskRequestShape::new(IoDir::Write, BlockNo(10), 4);
        m.charge(&dev, &a);
        assert!(m.is_sequential(&DiskRequestShape::new(IoDir::Write, BlockNo(14), 4)));
        assert!(!m.is_sequential(&DiskRequestShape::new(IoDir::Write, BlockNo(99), 4)));
    }

    #[test]
    fn prelim_model_charges_random_offsets() {
        let mut m = PrelimWriteModel::with_seek_equiv(800_000.0);
        let f = FileId(1);
        // First write to a file: no history, presumed random.
        let first = m.estimate(f, 0, 4096);
        assert!(first.bytes() > 4096.0);
        // Continuation: sequential, charged plain bytes.
        let second = m.estimate(f, 4096, 4096);
        assert!((second.bytes() - 4096.0).abs() < 1e-9);
        // Jump: random again.
        let third = m.estimate(f, 1_000_000, 4096);
        assert!(third.bytes() > 700_000.0);
    }

    #[test]
    fn prelim_model_is_cheaper_on_flash() {
        let hdd = PrelimWriteModel::for_device(&HddModel::new());
        let ssd = PrelimWriteModel::for_device(&SsdModel::new());
        assert!(hdd.seek_equiv_bytes > 10.0 * ssd.seek_equiv_bytes);
    }

    #[test]
    fn prelim_model_forget_resets_history() {
        let mut m = PrelimWriteModel::with_seek_equiv(1000.0);
        let f = FileId(2);
        m.estimate(f, 0, 4096);
        m.forget(f);
        // After forgetting, even a perfect continuation looks random.
        let c = m.estimate(f, 4096, 4096);
        assert!(c.bytes() > 4096.0);
    }
}
