#![warn(missing_docs)]
//! The split-level scheduling framework — the paper's primary
//! contribution (§3, §4).
//!
//! A split scheduler is one object implementing [`IoSched`], with hooks at
//! three layers of the storage stack (Table 2 of the paper):
//!
//! | Level | Hooks | Origin |
//! |---|---|---|
//! | system call | `syscall_enter` / `syscall_exit` for `write`, `fsync`, `creat`, `mkdir`, `unlink` | SCS |
//! | memory | `buffer_dirtied` / `buffer_freed` | **new** |
//! | block | `block_add` / `block_dispatch` / `block_completed` | block |
//!
//! The kernel invokes the hooks; the scheduler responds either by returning
//! a value (gating a syscall, issuing a request) or by queuing commands on
//! the [`SchedCtx`] (waking a parked task, arming a timer, kicking
//! writeback). Cross-layer *cause tags* ([`CauseSet`], re-exported from
//! `sim-core`) flow from the dirtying syscall through the page cache and
//! the file system's proxy tasks down to block requests, so a scheduler at
//! any layer can map I/O back to the processes responsible.
//!
//! Classic single-level schedulers plug into the same interface through
//! [`adapter::BlockOnly`], which is how the baselines run in the
//! experiments.

pub mod adapter;
pub mod cost;
pub mod hooks;
pub mod proxy;

pub use adapter::BlockOnly;
pub use cost::{NormalizedCost, PrelimWriteModel, SeekCostModel};
pub use hooks::{
    BufferDirtied, BufferFreed, Gate, IoSched, SchedAttr, SchedCmd, SchedCtx, SyscallInfo,
    SyscallKind,
};
pub use proxy::ProxyRegistry;

// The occupancy view hooks receive when the queued-device plane is on;
// defined in sim-block next to the mq dispatch layer that maintains it.
pub use sim_block::QueueOccupancy;

// The tag type itself; defined in sim-core so the block layer can carry it,
// re-exported here because it is conceptually part of the framework.
pub use sim_core::CauseSet;
