//! Proxy tracking (§3.1, Figure 7).
//!
//! A *proxy* is a task that dirties data or submits I/O on behalf of other
//! processes — the writeback thread and the journal task in ext4, the log
//! task in XFS, a garbage collector in a copy-on-write file system. While a
//! task is marked as a proxy, any work it produces is attributed to the
//! cause set it carries, not to the task itself.

use std::collections::HashMap;

use sim_core::{CauseSet, Pid};

/// Tracks which tasks are currently acting as proxies and for whom.
#[derive(Debug, Default)]
pub struct ProxyRegistry {
    acting_for: HashMap<Pid, CauseSet>,
}

impl ProxyRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mark `task` as acting on behalf of `causes`. Nested/batched work
    /// accumulates: marking an already-marked proxy unions the sets (a
    /// writeback pass covers many pages with different causes).
    pub fn mark(&mut self, task: Pid, causes: &CauseSet) {
        self.acting_for
            .entry(task)
            .or_insert_with(CauseSet::empty)
            .union_with(causes);
    }

    /// Clear `task`'s proxy state (it finished submitting delegated work).
    pub fn clear(&mut self, task: Pid) {
        self.acting_for.remove(&task);
    }

    /// Whether `task` is currently a proxy.
    pub fn is_proxy(&self, task: Pid) -> bool {
        self.acting_for.contains_key(&task)
    }

    /// Resolve the true causes of work performed by `task` right now:
    /// the carried cause set if `task` is a proxy, else `task` itself.
    pub fn resolve(&self, task: Pid) -> CauseSet {
        match self.acting_for.get(&task) {
            Some(causes) if !causes.is_empty() => causes.clone(),
            _ => CauseSet::of(task),
        }
    }

    /// The raw cause set carried by `task`, if any.
    pub fn carried(&self, task: Pid) -> Option<&CauseSet> {
        self.acting_for.get(&task)
    }

    /// Number of live proxies (overhead accounting).
    pub fn len(&self) -> usize {
        self.acting_for.len()
    }

    /// Whether no proxies are active.
    pub fn is_empty(&self) -> bool {
        self.acting_for.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn non_proxy_resolves_to_itself() {
        let r = ProxyRegistry::new();
        assert_eq!(r.resolve(Pid(9)), CauseSet::of(Pid(9)));
        assert!(!r.is_proxy(Pid(9)));
    }

    #[test]
    fn proxy_resolves_to_carried_causes() {
        // Figure 7: P3 writes back a page dirtied by P1 and P2; its work is
        // attributed to {P1, P2}, not P3.
        let mut r = ProxyRegistry::new();
        let causes = CauseSet::from_pids([Pid(1), Pid(2)]);
        r.mark(Pid(3), &causes);
        assert!(r.is_proxy(Pid(3)));
        assert_eq!(r.resolve(Pid(3)), causes);
        // And further dirtying by P3 (journal, metadata) inherits the set.
        let journal_tag = r.resolve(Pid(3));
        assert!(journal_tag.contains(Pid(1)));
        assert!(journal_tag.contains(Pid(2)));
        assert!(!journal_tag.contains(Pid(3)));
    }

    #[test]
    fn marks_accumulate_and_clear() {
        let mut r = ProxyRegistry::new();
        r.mark(Pid(3), &CauseSet::of(Pid(1)));
        r.mark(Pid(3), &CauseSet::of(Pid(2)));
        assert_eq!(r.resolve(Pid(3)).len(), 2);
        r.clear(Pid(3));
        assert_eq!(r.resolve(Pid(3)), CauseSet::of(Pid(3)));
        assert!(r.is_empty());
    }

    #[test]
    fn empty_carried_set_falls_back_to_self() {
        let mut r = ProxyRegistry::new();
        r.mark(Pid(4), &CauseSet::empty());
        assert_eq!(r.resolve(Pid(4)), CauseSet::of(Pid(4)));
    }
}
