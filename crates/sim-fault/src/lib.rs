#![warn(missing_docs)]
//! Deterministic fault injection and crash-consistency checking.
//!
//! The simulator's happy path is infallible: a submitted request always
//! completes. That leaves the journal's recovery guarantees — the part of
//! the stack the paper's ordered-mode protocol exists to protect — entirely
//! unexercised. This crate adds the missing adversary:
//!
//! * [`DeviceFaultPlane`] — a deterministic plan of device-level faults
//!   (transient errors, torn writes, latency spikes) the kernel consults at
//!   dispatch time. With no plane installed the stack is bit-identical to
//!   the fault-free build.
//! * [`DiskImage`] — a shadow record of every write's durable state, fed by
//!   the crash harness as the file system submits and the "device"
//!   completes I/O. [`DiskImage::crash`] models a power cut (in-flight
//!   writes lost, or torn to a prefix), [`DiskImage::recover`] replays the
//!   journal exactly as a jbd2-style mount would, and [`DiskImage::check`]
//!   asserts the ordered-mode invariants: committed-and-acknowledged
//!   transactions are durable, uncommitted ones are absent, and no
//!   recovered metadata points at data that never reached the platter.
//!
//! Everything here is passive bookkeeping — no clocks, no event queues —
//! so the harness can crash at *every* interesting point of a protocol run
//! and check each outcome independently.

pub mod image;
pub mod plane;

pub use image::{ConsistencyViolation, DiskImage, Durability, Recovery, WriteRecord, WriteStep};
pub use plane::{DeviceFaultPlane, Fault, InjectedFault};
