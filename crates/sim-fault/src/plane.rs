//! Deterministic device-level fault plan.

use std::collections::BTreeMap;

use sim_core::{RequestId, SimRng};
use sim_device::{DiskRequestShape, IoDir};

/// One fault applied to a device write.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// The device reports failure; nothing reaches media.
    Transient,
    /// The write tears: only the first `durable_blocks` blocks reach media
    /// and the device reports failure. `durable_blocks` may equal the write
    /// length — the "succeeded but the completion was lost" case.
    Torn {
        /// Blocks (from the start of the write) that became durable.
        durable_blocks: u64,
    },
    /// The request completes normally but takes `factor`× its modeled
    /// service time (firmware stall, internal GC pause).
    Spike {
        /// Service-time multiplier, ≥ 1.0.
        factor: f64,
    },
}

/// Record of one injected fault, for reports and assertions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InjectedFault {
    /// Index of the write among all writes the plane has seen (0-based).
    pub write_op: u64,
    /// The affected request.
    pub req: RequestId,
    /// What was injected.
    pub fault: Fault,
}

/// Per-write fault probabilities for the rate-based mode.
#[derive(Debug, Clone, Copy, Default)]
struct Rates {
    transient: f64,
    torn: f64,
    spike: f64,
    spike_factor: f64,
}

impl Rates {
    fn any(&self) -> bool {
        self.transient > 0.0 || self.torn > 0.0 || self.spike > 0.0
    }
}

/// A deterministic fault plan for one device.
///
/// Faults come from two sources, both pure functions of the configuration:
///
/// * a **plan** — explicit "fault the Nth write" entries, which is what the
///   crash-point sweep uses to hit every step of the journal protocol, and
/// * **rates** — per-write probabilities drawn from a dedicated seeded
///   [`SimRng`]. Draws happen in a fixed order once per write op, so a run
///   is a pure function of (workload, seed).
///
/// The plane only ever fires on writes; reads pass through untouched. With
/// an empty plan and zero rates it never fires — and the kernel skips fault
/// handling entirely when no plane is installed, keeping the happy path
/// bit-identical to the fault-free build.
#[derive(Debug, Clone, Default)]
pub struct DeviceFaultPlane {
    plan: BTreeMap<u64, Fault>,
    rates: Rates,
    rng: Option<SimRng>,
    writes_seen: u64,
    injected: Vec<InjectedFault>,
}

impl DeviceFaultPlane {
    /// A plane that never fires until plan entries or rates are added.
    pub fn new() -> Self {
        Self::default()
    }

    /// A plane with a seeded RNG for the rate-based mode.
    pub fn with_seed(seed: u64) -> Self {
        DeviceFaultPlane {
            rng: Some(SimRng::seed_from_u64(seed)),
            ..Self::default()
        }
    }

    /// Plan: the `nth` write (0-based) reports a transient failure.
    pub fn fail_write(mut self, nth: u64) -> Self {
        self.plan.insert(nth, Fault::Transient);
        self
    }

    /// Plan: the `nth` write tears after `durable_blocks` blocks.
    pub fn tear_write(mut self, nth: u64, durable_blocks: u64) -> Self {
        self.plan.insert(nth, Fault::Torn { durable_blocks });
        self
    }

    /// Plan: the `nth` write takes `factor`× its modeled service time.
    pub fn spike_write(mut self, nth: u64, factor: f64) -> Self {
        self.plan.insert(nth, Fault::Spike { factor });
        self
    }

    /// Rate: each write fails transiently with probability `p`.
    pub fn transient_rate(mut self, p: f64) -> Self {
        self.rates.transient = p;
        self
    }

    /// Rate: each write tears with probability `p` (durable prefix drawn
    /// uniformly from `0..nblocks`).
    pub fn torn_rate(mut self, p: f64) -> Self {
        self.rates.torn = p;
        self
    }

    /// Rate: each write spikes to `factor`× with probability `p`.
    pub fn spike_rate(mut self, p: f64, factor: f64) -> Self {
        self.rates.spike = p;
        self.rates.spike_factor = factor;
        self
    }

    /// Consult the plane for one request at dispatch time. Advances the
    /// write-op counter (and the RNG stream, in rate mode) only for writes.
    pub fn on_request(&mut self, req: RequestId, shape: &DiskRequestShape) -> Option<Fault> {
        if shape.dir != IoDir::Write {
            return None;
        }
        let op = self.writes_seen;
        self.writes_seen += 1;

        let fault = if let Some(&f) = self.plan.get(&op) {
            Some(f)
        } else if self.rates.any() {
            self.draw(shape)
        } else {
            None
        };
        if let Some(fault) = fault {
            self.injected.push(InjectedFault {
                write_op: op,
                req,
                fault,
            });
        }
        fault
    }

    /// Rate-based draw; consumes the RNG in a fixed order per write op.
    fn draw(&mut self, shape: &DiskRequestShape) -> Option<Fault> {
        let rng = self.rng.as_mut()?;
        if self.rates.transient > 0.0 && rng.gen_bool(self.rates.transient) {
            return Some(Fault::Transient);
        }
        if self.rates.torn > 0.0 && rng.gen_bool(self.rates.torn) {
            let durable_blocks = rng.gen_range(shape.nblocks);
            return Some(Fault::Torn { durable_blocks });
        }
        if self.rates.spike > 0.0 && rng.gen_bool(self.rates.spike) {
            return Some(Fault::Spike {
                factor: self.rates.spike_factor.max(1.0),
            });
        }
        None
    }

    /// Every fault injected so far, in injection order.
    pub fn injected(&self) -> &[InjectedFault] {
        &self.injected
    }

    /// Writes the plane has seen (= the op index the next write gets).
    pub fn writes_seen(&self) -> u64 {
        self.writes_seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::BlockNo;

    fn wr(n: u64) -> DiskRequestShape {
        DiskRequestShape::new(IoDir::Write, BlockNo(100), n)
    }

    fn rd() -> DiskRequestShape {
        DiskRequestShape::new(IoDir::Read, BlockNo(100), 4)
    }

    #[test]
    fn empty_plane_never_fires() {
        let mut p = DeviceFaultPlane::new();
        for i in 0..100 {
            assert_eq!(p.on_request(RequestId(i), &wr(4)), None);
        }
        assert!(p.injected().is_empty());
        assert_eq!(p.writes_seen(), 100);
    }

    #[test]
    fn plan_fires_on_exact_write_op_and_skips_reads() {
        let mut p = DeviceFaultPlane::new().fail_write(2).tear_write(4, 1);
        assert_eq!(p.on_request(RequestId(0), &wr(4)), None); // write 0
        assert_eq!(p.on_request(RequestId(1), &rd()), None); // read: not counted
        assert_eq!(p.on_request(RequestId(2), &wr(4)), None); // write 1
        assert_eq!(
            p.on_request(RequestId(3), &wr(4)),
            Some(Fault::Transient) // write 2
        );
        assert_eq!(p.on_request(RequestId(4), &wr(4)), None); // write 3
        assert_eq!(
            p.on_request(RequestId(5), &wr(4)),
            Some(Fault::Torn { durable_blocks: 1 }) // write 4
        );
        let log = p.injected();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].write_op, 2);
        assert_eq!(log[0].req, RequestId(3));
        assert_eq!(log[1].write_op, 4);
    }

    #[test]
    fn rates_are_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut p = DeviceFaultPlane::with_seed(seed)
                .transient_rate(0.1)
                .torn_rate(0.1)
                .spike_rate(0.1, 10.0);
            (0..1000)
                .map(|i| p.on_request(RequestId(i), &wr(8)))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
        let fired = run(7).iter().filter(|f| f.is_some()).count();
        assert!(fired > 100, "expected ~27% fire rate, got {fired}/1000");
    }

    #[test]
    fn torn_rate_draws_prefix_shorter_than_write() {
        let mut p = DeviceFaultPlane::with_seed(3).torn_rate(1.0);
        for i in 0..100 {
            match p.on_request(RequestId(i), &wr(8)) {
                Some(Fault::Torn { durable_blocks }) => assert!(durable_blocks < 8),
                other => panic!("expected torn fault, got {other:?}"),
            }
        }
    }
}
