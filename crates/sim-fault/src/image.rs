//! Shadow disk image, journal replay and ordered-mode invariant checks.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

use sim_core::{BlockNo, FileId, TxnId};

/// The journal-protocol role of one write, annotated by the file system at
/// submission time. The crash harness uses it to replay recovery without
/// parsing on-disk state.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum WriteStep {
    /// Not part of the tracked protocol (reads, fixture setup).
    #[default]
    Untracked,
    /// Ordered file data flushed by writeback or an fsync/commit.
    Data {
        /// The file the pages belong to.
        file: FileId,
    },
    /// The log body of transaction `txn`.
    JournalLog {
        /// The transaction being logged.
        txn: TxnId,
        /// Files whose ordered data the transaction's metadata describes;
        /// their data must be durable before this write is submitted.
        ordered: Vec<FileId>,
    },
    /// The single-block commit record of `txn` (atomic on media).
    CommitRecord {
        /// The transaction being committed.
        txn: TxnId,
    },
    /// The post-commit checkpoint of `txn` to the home metadata location.
    Checkpoint {
        /// The transaction being checkpointed.
        txn: TxnId,
    },
}

/// Durable state of one submitted write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Durability {
    /// Submitted, not yet completed; lost if power is cut now.
    InFlight,
    /// Fully on media.
    Durable,
    /// Nothing reached media.
    Lost,
    /// Only the first `durable_blocks` blocks reached media.
    Torn {
        /// Blocks (from the write's start) that became durable.
        durable_blocks: u64,
    },
}

impl Durability {
    /// Whether the whole write is on media.
    pub fn fully_durable(self, nblocks: u64) -> bool {
        match self {
            Durability::Durable => true,
            Durability::Torn { durable_blocks } => durable_blocks >= nblocks,
            _ => false,
        }
    }
}

/// One write the image is tracking.
#[derive(Debug, Clone)]
pub struct WriteRecord {
    /// Submission order (0-based).
    pub seq: u64,
    /// Caller-chosen correlation key (an `IoToken` or `RequestId` raw).
    pub key: u64,
    /// Protocol role.
    pub step: WriteStep,
    /// First block written.
    pub start: BlockNo,
    /// Length in blocks.
    pub nblocks: u64,
    /// Current durable state.
    pub state: Durability,
}

/// What journal replay would recover after a crash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Recovery {
    /// Transactions recovered, in id order. Replay stops at the first
    /// transaction whose log or commit record is not fully durable, so
    /// this is always a prefix of the committed sequence.
    pub recovered: Vec<TxnId>,
    /// The transaction replay stopped at, if any.
    pub first_gap: Option<TxnId>,
}

impl Recovery {
    /// Whether `txn` survived the crash.
    pub fn contains(&self, txn: TxnId) -> bool {
        self.recovered.contains(&txn)
    }
}

/// A broken ordered-mode guarantee found after replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConsistencyViolation {
    /// `TxnCommitted` was reported to the application before the crash but
    /// replay did not recover the transaction — an acknowledged durability
    /// promise was broken.
    AckedTxnLost {
        /// The lost transaction.
        txn: TxnId,
    },
    /// A recovered transaction's metadata describes file data that never
    /// became durable — metadata pointing at garbage, the failure ordered
    /// mode exists to prevent.
    StaleData {
        /// The recovered transaction.
        txn: TxnId,
        /// The file whose data is missing.
        file: FileId,
    },
    /// A transaction was recovered from a torn log — replay accepted a
    /// partial log body.
    TornJournalRecovered {
        /// The transaction.
        txn: TxnId,
    },
    /// A checkpoint write reached media for a transaction that was never
    /// durably committed — home metadata was overwritten ahead of the
    /// commit record.
    CheckpointWithoutCommit {
        /// The prematurely checkpointed transaction.
        txn: TxnId,
    },
}

impl fmt::Display for ConsistencyViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConsistencyViolation::AckedTxnLost { txn } => {
                write!(f, "acknowledged txn {txn} lost by replay")
            }
            ConsistencyViolation::StaleData { txn, file } => {
                write!(f, "recovered txn {txn} points at stale data of file {file}")
            }
            ConsistencyViolation::TornJournalRecovered { txn } => {
                write!(f, "txn {txn} recovered from a torn log")
            }
            ConsistencyViolation::CheckpointWithoutCommit { txn } => {
                write!(f, "txn {txn} checkpointed without a durable commit")
            }
        }
    }
}

/// Per-transaction digest built from the write records.
#[derive(Debug, Default)]
struct TxnDigest {
    log_seqs: Vec<u64>,
    log_fully_durable: bool,
    log_torn: bool,
    has_log: bool,
    commit_durable: bool,
    has_commit: bool,
    checkpoint_durable: bool,
    ordered: Vec<FileId>,
}

/// A shadow record of every write's durable state.
///
/// The crash harness calls [`DiskImage::submit`] for each `IoReq` the file
/// system emits, [`DiskImage::complete`] / [`DiskImage::fail`] as its fake
/// device finishes them, and [`DiskImage::crash`] to cut power. The image
/// never talks to the real simulation objects — it is a passive observer,
/// which is what lets one protocol run be crashed at many points cheaply.
#[derive(Debug, Default)]
pub struct DiskImage {
    writes: Vec<WriteRecord>,
    by_key: HashMap<u64, usize>,
    crashed: bool,
}

impl DiskImage {
    /// An empty image.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a submitted write. `key` must be unique per write.
    pub fn submit(&mut self, key: u64, step: WriteStep, start: BlockNo, nblocks: u64) {
        let seq = self.writes.len() as u64;
        let idx = self.writes.len();
        self.writes.push(WriteRecord {
            seq,
            key,
            step,
            start,
            nblocks,
            state: Durability::InFlight,
        });
        let prev = self.by_key.insert(key, idx);
        debug_assert!(prev.is_none(), "duplicate disk-image key {key}");
    }

    /// Mark a write fully durable.
    pub fn complete(&mut self, key: u64) {
        self.set_state(key, Durability::Durable);
    }

    /// Mark a write failed: lost entirely, or torn to a durable prefix.
    pub fn fail(&mut self, key: u64, durable_blocks: Option<u64>) {
        let state = match durable_blocks {
            Some(d) => Durability::Torn { durable_blocks: d },
            None => Durability::Lost,
        };
        self.set_state(key, state);
    }

    fn set_state(&mut self, key: u64, state: Durability) {
        if let Some(&idx) = self.by_key.get(&key) {
            self.writes[idx].state = state;
        }
    }

    /// Cut power: every in-flight write is lost, or — when `torn_prefix`
    /// is given — torn to `min(torn_prefix, nblocks)` durable blocks.
    pub fn crash(&mut self, torn_prefix: Option<u64>) {
        self.crashed = true;
        for w in &mut self.writes {
            if w.state == Durability::InFlight {
                w.state = match torn_prefix {
                    Some(p) => Durability::Torn {
                        durable_blocks: p.min(w.nblocks),
                    },
                    None => Durability::Lost,
                };
            }
        }
    }

    /// Whether [`DiskImage::crash`] has been called.
    pub fn crashed(&self) -> bool {
        self.crashed
    }

    /// All tracked writes, in submission order.
    pub fn writes(&self) -> &[WriteRecord] {
        &self.writes
    }

    fn digests(&self) -> BTreeMap<TxnId, TxnDigest> {
        let mut txns: BTreeMap<TxnId, TxnDigest> = BTreeMap::new();
        for w in &self.writes {
            match &w.step {
                WriteStep::JournalLog { txn, ordered } => {
                    let d = txns.entry(*txn).or_default();
                    if !d.has_log {
                        d.log_fully_durable = true;
                    }
                    d.has_log = true;
                    d.log_seqs.push(w.seq);
                    d.log_fully_durable &= w.state.fully_durable(w.nblocks);
                    d.log_torn |= matches!(w.state, Durability::Torn { durable_blocks } if durable_blocks < w.nblocks);
                    for f in ordered {
                        if !d.ordered.contains(f) {
                            d.ordered.push(*f);
                        }
                    }
                }
                WriteStep::CommitRecord { txn } => {
                    let d = txns.entry(*txn).or_default();
                    d.has_commit = true;
                    d.commit_durable |= w.state.fully_durable(w.nblocks);
                }
                WriteStep::Checkpoint { txn } => {
                    let d = txns.entry(*txn).or_default();
                    d.checkpoint_durable |= w.state.fully_durable(w.nblocks);
                }
                WriteStep::Data { .. } | WriteStep::Untracked => {}
            }
        }
        txns
    }

    /// Replay the journal as a jbd2-style mount would: walk transactions in
    /// id order, recover each whose log body is fully durable (not torn)
    /// and whose commit record is durable, and stop at the first gap —
    /// later transactions are unreachable behind it even if their own
    /// blocks survived.
    pub fn recover(&self) -> Recovery {
        let mut recovered = Vec::new();
        let mut first_gap = None;
        for (txn, d) in self.digests() {
            let ok = d.has_log && d.log_fully_durable && !d.log_torn && d.commit_durable;
            if ok {
                recovered.push(txn);
            } else {
                first_gap = Some(txn);
                break;
            }
        }
        Recovery {
            recovered,
            first_gap,
        }
    }

    /// Check the ordered-mode guarantees after a crash. `acked` lists the
    /// transactions whose `TxnCommitted` event the stack delivered before
    /// the crash (durability promises made to applications).
    pub fn check(&self, acked: &[TxnId]) -> Vec<ConsistencyViolation> {
        let recovery = self.recover();
        let digests = self.digests();
        let mut violations = Vec::new();

        for &txn in acked {
            if !recovery.contains(txn) {
                violations.push(ConsistencyViolation::AckedTxnLost { txn });
            }
        }

        for (&txn, d) in &digests {
            if recovery.contains(txn) && d.log_torn {
                violations.push(ConsistencyViolation::TornJournalRecovered { txn });
            }
            if !recovery.contains(txn) && d.checkpoint_durable {
                violations.push(ConsistencyViolation::CheckpointWithoutCommit { txn });
            }
        }

        // Ordered-data rule: for every recovered transaction, all data
        // writes of its ordered files submitted before the transaction's
        // log went out must be durable — otherwise replayed metadata
        // describes blocks that never hit the platter.
        for &txn in &recovery.recovered {
            let d = &digests[&txn];
            let Some(&log_seq) = d.log_seqs.iter().min() else {
                continue;
            };
            for &file in &d.ordered {
                let stale = self.writes.iter().any(|w| {
                    w.seq < log_seq
                        && w.step == (WriteStep::Data { file })
                        && !w.state.fully_durable(w.nblocks)
                });
                if stale {
                    violations.push(ConsistencyViolation::StaleData { txn, file });
                }
            }
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const F: FileId = FileId(1);
    const T1: TxnId = TxnId(1);
    const T2: TxnId = TxnId(2);

    /// One ordered-mode protocol round: data → log → commit → checkpoint.
    fn protocol_round(img: &mut DiskImage, txn: TxnId, base_key: u64) {
        img.submit(base_key, WriteStep::Data { file: F }, BlockNo(1000), 4);
        img.submit(
            base_key + 1,
            WriteStep::JournalLog {
                txn,
                ordered: vec![F],
            },
            BlockNo(5000),
            2,
        );
        img.submit(
            base_key + 2,
            WriteStep::CommitRecord { txn },
            BlockNo(5002),
            1,
        );
        img.submit(base_key + 3, WriteStep::Checkpoint { txn }, BlockNo(200), 1);
    }

    fn complete_all(img: &mut DiskImage, keys: std::ops::Range<u64>) {
        for k in keys {
            img.complete(k);
        }
    }

    #[test]
    fn full_round_recovers_cleanly() {
        let mut img = DiskImage::new();
        protocol_round(&mut img, T1, 0);
        complete_all(&mut img, 0..4);
        img.crash(None);
        let r = img.recover();
        assert_eq!(r.recovered, vec![T1]);
        assert_eq!(r.first_gap, None);
        assert!(img.check(&[T1]).is_empty());
    }

    #[test]
    fn crash_before_commit_record_loses_unacked_txn() {
        let mut img = DiskImage::new();
        protocol_round(&mut img, T1, 0);
        img.complete(0); // data
        img.complete(1); // log
        img.crash(None); // commit record + checkpoint in flight -> lost
        let r = img.recover();
        assert!(r.recovered.is_empty());
        assert_eq!(r.first_gap, Some(T1));
        // Not acked, so losing it is allowed...
        assert!(img.check(&[]).is_empty());
        // ...but losing an *acknowledged* txn is a violation.
        assert_eq!(
            img.check(&[T1]),
            vec![ConsistencyViolation::AckedTxnLost { txn: T1 }]
        );
    }

    #[test]
    fn torn_log_is_not_recovered() {
        let mut img = DiskImage::new();
        protocol_round(&mut img, T1, 0);
        img.complete(0);
        img.fail(1, Some(1)); // log torn: 1 of 2 blocks durable
        img.complete(2); // commit record durable
        img.crash(None);
        let r = img.recover();
        assert!(r.recovered.is_empty(), "torn log must not replay");
    }

    #[test]
    fn replay_stops_at_first_gap() {
        let mut img = DiskImage::new();
        protocol_round(&mut img, T1, 0);
        protocol_round(&mut img, T2, 10);
        // T1's commit record lost; T2 fully durable.
        img.complete(0);
        img.complete(1);
        img.fail(2, None);
        img.complete(3);
        complete_all(&mut img, 10..14);
        img.crash(None);
        let r = img.recover();
        assert!(r.recovered.is_empty(), "T2 is unreachable behind T1's gap");
        assert_eq!(r.first_gap, Some(T1));
    }

    #[test]
    fn lost_ordered_data_is_stale_data() {
        let mut img = DiskImage::new();
        protocol_round(&mut img, T1, 0);
        img.fail(0, None); // data never hit the platter
        complete_all(&mut img, 1..4);
        img.crash(None);
        assert_eq!(
            img.check(&[]),
            vec![ConsistencyViolation::StaleData { txn: T1, file: F }]
        );
    }

    #[test]
    fn durable_checkpoint_without_commit_is_flagged() {
        let mut img = DiskImage::new();
        protocol_round(&mut img, T1, 0);
        img.complete(0);
        img.complete(1);
        img.fail(2, None); // commit record lost
        img.complete(3); // but checkpoint landed
        img.crash(None);
        assert_eq!(
            img.check(&[]),
            vec![ConsistencyViolation::CheckpointWithoutCommit { txn: T1 }]
        );
    }

    #[test]
    fn crash_tears_in_flight_writes_when_asked() {
        let mut img = DiskImage::new();
        img.submit(0, WriteStep::Data { file: F }, BlockNo(0), 8);
        img.crash(Some(3));
        assert_eq!(
            img.writes()[0].state,
            Durability::Torn { durable_blocks: 3 }
        );
        // A torn prefix longer than the write clamps to fully durable.
        let mut img = DiskImage::new();
        img.submit(0, WriteStep::Data { file: F }, BlockNo(0), 2);
        img.crash(Some(8));
        assert!(img.writes()[0].state.fully_durable(2));
    }
}
