//! Distributed isolation (§7.3): an HDFS-like cluster where every worker
//! runs Split-Token locally and the client-to-worker protocol carries an
//! account id that joins the datanode handlers into shared token buckets.
//!
//! ```sh
//! cargo run --release --example distributed_hdfs
//! ```

use split_level_io::apps::dfs::{DfsCluster, DfsConfig};
use split_level_io::prelude::*;

fn main() {
    const MB: u64 = 1 << 20;
    let mut world = World::new();
    let mut cluster = DfsCluster::new(
        &mut world,
        DfsConfig {
            workers: 5,
            block_bytes: 32 * MB,
            ..Default::default()
        },
    );

    // Two accounts, two writer clients each; account 1 is capped at
    // 8 MB/s per worker, account 2 is free.
    const CAPPED: u32 = 1;
    const FREE: u32 = 2;
    for _ in 0..2 {
        cluster
            .add_client(&mut world, CAPPED)
            .expect("cluster has workers");
        cluster
            .add_client(&mut world, FREE)
            .expect("cluster has workers");
    }
    cluster
        .set_account_rate(&mut world, CAPPED, 8 * MB)
        .expect("capped account exists and rate is nonzero");

    let window = SimDuration::from_secs(10);
    cluster.run(&mut world, window);

    let secs = window.as_secs_f64();
    let capped = cluster.account_bytes(CAPPED) as f64 / 1e6 / secs;
    let free = cluster.account_bytes(FREE) as f64 / 1e6 / secs;
    // 5 workers × 8 MB/s local cap ÷ 3x replication:
    let bound = 5.0 * 8.0 / 3.0;
    println!("capped account: {capped:6.1} MB/s  (theoretical bound {bound:.1} MB/s)");
    println!("free account:   {free:6.1} MB/s");
    assert!(capped <= bound * 1.15, "the cap must hold cluster-wide");
    println!("\nLocal split-level scheduling on each worker adds up to a");
    println!("cluster-wide isolation guarantee (the paper's Figure 21).");
}
