//! The database "fsync freeze" (§7.1): a WAL-committing transaction
//! worker plus a checkpointer, run under Block-Deadline and then
//! Split-Deadline. Split-Deadline holds the checkpointer's expensive
//! fsync at the syscall gate and drains it with asynchronous writeback,
//! so transaction commits never queue behind a checkpoint burst.
//!
//! ```sh
//! cargo run --release --example database_latency
//! ```

use split_level_io::apps::minidb::{Checkpointer, MiniDbConfig, MiniDbShared, TxnWorker};
use split_level_io::prelude::*;

fn percentile(xs: &[f64], p: f64) -> f64 {
    split_level_io::core::stats::percentile(xs, p)
}

fn run_db(split: bool) -> (usize, f64, f64) {
    let mut world = World::new();
    let sched: Box<dyn IoSched> = if split {
        Box::new(SplitDeadline::new())
    } else {
        Box::new(BlockOnly::new(BlockDeadline::new()))
    };
    let cfg = KernelConfig {
        pdflush: !split, // Split-Deadline owns writeback itself
        ..Default::default()
    };
    let kernel = world.add_kernel(cfg, DeviceKind::hdd(), sched);

    const MB: u64 = 1 << 20;
    let db_file = world.prealloc_file(kernel, 256 * MB, true);
    let wal_file = world.prealloc_file(kernel, 64 * MB, true);
    let shared = MiniDbShared::new();
    let db_cfg = MiniDbConfig {
        checkpoint_threshold: 500,
        ..Default::default()
    };
    let worker = world.spawn(
        kernel,
        Box::new(TxnWorker::new(db_cfg, shared.clone(), db_file, wal_file, 1)),
    );
    let cp = world.spawn(
        kernel,
        Box::new(Checkpointer::new(db_cfg, shared.clone(), db_file)),
    );
    if split {
        // Short deadline for log commits, long for checkpoints.
        world.configure(
            kernel,
            worker,
            SchedAttr::FsyncDeadline(SimDuration::from_millis(100)),
        );
        world.configure(
            kernel,
            cp,
            SchedAttr::FsyncDeadline(SimDuration::from_secs(10)),
        );
    }
    world.run_for(SimDuration::from_secs(25));
    let sh = shared.borrow();
    let lat: Vec<f64> = sh
        .txn_latencies
        .iter()
        .map(|(_, d)| d.as_millis_f64())
        .collect();
    (lat.len(), percentile(&lat, 99.0), percentile(&lat, 99.9))
}

fn main() {
    println!("SQLite-like workload, 25 simulated seconds, 500-buffer checkpoints\n");
    for (name, split) in [("Block-Deadline", false), ("Split-Deadline", true)] {
        let (txns, p99, p999) = run_db(split);
        println!("{name:>15}: {txns:6} txns   p99 {p99:7.1} ms   p99.9 {p999:7.1} ms");
    }
    println!("\nThe split scheduler removes the checkpoint-induced tail: the paper's");
    println!("Figure 18 reports a 4x improvement at this threshold.");
}
