//! Cloud isolation (§7.2): two QEMU-like guests on one host; the noisy
//! neighbour's whole VM is throttled on the host with Split-Token.
//! Guest kernels are vanilla — all scheduling happens below them.
//!
//! ```sh
//! cargo run --release --example cloud_isolation
//! ```

use split_level_io::apps::vmm::{launch_guest, GuestConfig};
use split_level_io::prelude::*;

fn main() {
    let mut world = World::new();
    // The host: HDD + Split-Token.
    let host = world.add_kernel(
        KernelConfig::default(),
        DeviceKind::hdd(),
        Box::new(SplitToken::new()),
    );

    // Two guests, each with its own kernel, page cache and virtual disk.
    let vm_a = launch_guest(&mut world, host, GuestConfig::default());
    let vm_b = launch_guest(&mut world, host, GuestConfig::default());

    const GB: u64 = 1 << 30;
    // Tenant A streams inside its VM.
    let a_file = world.prealloc_file(vm_a.kernel, 2 * GB, true);
    let a = world.spawn(
        vm_a.kernel,
        Box::new(SeqReader::new(a_file, 2 * GB, 1 << 20)),
    );
    // Tenant B hammers random reads inside its VM.
    let b_file = world.prealloc_file(vm_b.kernel, 2 * GB, false);
    let b = world.spawn(
        vm_b.kernel,
        Box::new(RandReader::new(b_file, 2 * GB, 4096, 9)),
    );

    // Throttle *the whole B VM*: the host-side VMM process that performs
    // B's I/O is the unit of accounting.
    world.configure(host, vm_b.vmm_pid, SchedAttr::TokenRate(1 << 20)); // 1 MB/s

    let window = SimDuration::from_secs(10);
    world.run_for(window);

    let a_mbps = world.kernel(vm_a.kernel).stats.read_mbps(a, window);
    let b_mbps = world.kernel(vm_b.kernel).stats.read_mbps(b, window);
    println!("tenant A (unthrottled VM): {a_mbps:6.1} MB/s");
    println!("tenant B (1 MB/s cap VM):  {b_mbps:6.1} MB/s");
    assert!(a_mbps > 50.0, "A's VM must be isolated from B's seek storm");
    println!("\nB's random reads were charged their true device cost on the host,");
    println!("so tenant A kept its bandwidth (the paper's Figure 20).");
}
