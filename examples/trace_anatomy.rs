//! Anatomy of an fsync: trace every block request the stack issues for a
//! single `write + fsync` pair and print the protocol the journal runs —
//! ordered data first, then the log, then the commit record, then the
//! checkpoint. This is Figure 4 of the paper, live.
//!
//! ```sh
//! cargo run --release --example trace_anatomy
//! ```

use split_level_io::prelude::*;

fn main() {
    let mut world = World::new();
    let k = world.add_kernel(
        KernelConfig::default(),
        DeviceKind::hdd(),
        Box::new(BlockOnly::new(Noop::new())),
    );
    world.kernel_mut(k).enable_trace(1024);

    // Two processes write to different files; one fsyncs.
    let fa = world.prealloc_file(k, 16 << 20, true);
    let fb = world.prealloc_file(k, 16 << 20, true);
    let mut step_a = 0;
    let a = world.spawn(
        k,
        Box::new(move |_n: SimTime, _l: &Outcome| {
            step_a += 1;
            match step_a {
                1 => ProcAction::Syscall(SyscallKind::Write {
                    file: fa,
                    offset: 0,
                    len: 4096,
                }),
                2 => ProcAction::Syscall(SyscallKind::Fsync { file: fa }),
                _ => ProcAction::Exit,
            }
        }),
    );
    let mut wrote_b = false;
    let b = world.spawn(
        k,
        Box::new(move |_n: SimTime, _l: &Outcome| {
            if !wrote_b {
                wrote_b = true;
                ProcAction::Syscall(SyscallKind::Write {
                    file: fb,
                    offset: 0,
                    len: 64 * 1024,
                })
            } else {
                ProcAction::Exit
            }
        }),
    );
    world.run_for(SimDuration::from_secs(1));

    let kernel = world.kernel(k);
    let records = kernel.trace_records().expect("tracing enabled");
    println!("block requests for A's fsync (A wrote 4 KB; B wrote 64 KB, no fsync):\n");
    println!(
        "{:>10}  {:>9}  {:<8} {:<9} {:>9}  causes",
        "t (ms)", "queue ms", "dir", "kind", "submitter"
    );
    for r in &records {
        let causes: Vec<String> = r.causes.iter().map(|p| p.raw().to_string()).collect();
        println!(
            "{:>10.3}  {:>9.3}  {:<8?} {:<9?} {:>9}  {{{}}}",
            r.dispatched_at.as_millis_f64(),
            r.queue_delay().as_millis_f64(),
            r.dir,
            r.kind,
            r.submitter.raw(),
            causes.join(",")
        );
    }
    println!(
        "\nA = pid {}, B = pid {}, journal task = pid {}, writeback = pid {}",
        a.raw(),
        b.raw(),
        kernel.journal_pid().raw(),
        kernel.writeback_pid().raw()
    );
    println!("\nNote the entanglement: A's fsync forced B's data out first (ordered");
    println!("mode), and the journal-task I/O carries BOTH pids in its cause set —");
    println!("the cross-layer tags a block-level scheduler never sees.");
}
