//! Quickstart: build a machine, run two processes under Split-Token, and
//! watch the throttled one get held while the other keeps its bandwidth.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use split_level_io::prelude::*;

fn main() {
    // One machine: 7200 RPM disk, ext4, the Split-Token scheduler.
    let mut world = World::new();
    let kernel = world.add_kernel(
        KernelConfig::default(),
        DeviceKind::hdd(),
        Box::new(SplitToken::new()),
    );

    // Process A streams a 4 GB file; process B scribbles 4 KB random
    // writes all over a fragmented 2 GB file.
    const GB: u64 = 1 << 30;
    let a_file = world.prealloc_file(kernel, 4 * GB, true);
    let b_file = world.prealloc_file(kernel, 2 * GB, false);
    let a = world.spawn(kernel, Box::new(SeqReader::new(a_file, 4 * GB, 1 << 20)));
    let b = world.spawn(kernel, Box::new(RandWriter::new(b_file, 2 * GB, 4096, 42)));

    // Throttle B to 10 MB/s of *normalized* I/O: random writes are
    // charged their true (seek-dominated) device cost, promptly, at the
    // moment they dirty page-cache buffers.
    world.configure(kernel, b, SchedAttr::TokenRate(10 << 20));

    let window = SimDuration::from_secs(10);
    world.run_for(window);

    let stats = &world.kernel(kernel).stats;
    println!("after {:.0} simulated seconds:", window.as_secs_f64());
    println!(
        "  A (unthrottled reader): {:6.1} MB/s",
        stats.read_mbps(a, window)
    );
    println!(
        "  B (throttled writer):   {:6.1} MB/s buffered",
        stats.write_mbps(b, window)
    );
    let gated = stats
        .proc(b)
        .map(|s| s.gated_time)
        .unwrap_or(SimDuration::ZERO);
    println!(
        "  B spent {:.1} s held at the syscall gate paying off its token debt",
        gated.as_secs_f64()
    );
    let a_mbps = stats.read_mbps(a, window);
    assert!(a_mbps > 50.0, "A should keep most of the disk");
    println!("\nA kept its bandwidth: split-level scheduling isolated it from B's writes.");
}
